"""repro.campaign — resumable multi-circuit experiment campaigns.

The paper's results are tables over a *matrix* of circuits x
process-variation settings x tuning budgets.  This subsystem reproduces
whole paper-style result tables in one command and survives
interruption:

* :mod:`repro.campaign.spec` — declarative campaign specs
  (:class:`CampaignSpec`), deterministically expanded into content-
  fingerprinted :class:`CampaignCell` s with derived per-cell seeds,
  plus round-robin sharding for multi-job CI;
* :mod:`repro.campaign.store` — the checkpointed JSONL result store
  (:class:`CampaignStore`): one fsynced record per completed cell,
  content-addressed by cell fingerprint, tolerant of a kill mid-append;
* :mod:`repro.campaign.runner` — :class:`CampaignRunner`, which maps
  pending cells onto one :mod:`repro.engine` executor, reusing warm
  solver state via the compiled constraint system's fingerprint, and
  resumes exactly where a previous invocation stopped;
* :mod:`repro.campaign.report` — paper-style Table-I aggregation plus a
  baseline-comparison table (every-FF / criticality / random), rendered
  as markdown, plain text or canonical JSON, **bit-identical** between
  interrupted-and-resumed and uninterrupted campaigns.

The CLI surface is ``repro campaign run|status|report``.
"""

from repro.campaign.report import (
    REPORT_SCHEMA_VERSION,
    CampaignReport,
    build_report,
    format_report,
    format_report_markdown,
    format_report_text,
    save_report,
)
from repro.campaign.runner import (
    CampaignRunner,
    CampaignRunSummary,
    CampaignStatus,
    campaign_status,
)
from repro.campaign.spec import (
    SPEC_NAMES,
    CampaignCell,
    CampaignError,
    CampaignSpec,
    get_spec,
    load_spec,
    shard_cells,
)
from repro.campaign.store import (
    STORE_SCHEMA_VERSION,
    CampaignStore,
    CampaignStoreError,
    default_store_path,
    make_record,
)

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "SPEC_NAMES",
    "STORE_SCHEMA_VERSION",
    "CampaignCell",
    "CampaignError",
    "CampaignReport",
    "CampaignRunSummary",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStatus",
    "CampaignStore",
    "CampaignStoreError",
    "build_report",
    "campaign_status",
    "default_store_path",
    "format_report",
    "format_report_markdown",
    "format_report_text",
    "get_spec",
    "load_spec",
    "make_record",
    "save_report",
    "shard_cells",
]
