"""Checkpointed JSONL campaign result store.

One line per completed cell, appended **and fsynced** the moment the
cell finishes, so a campaign killed at any point loses at most the cell
that was in flight.  Records are content-addressed by the cell's
:meth:`~repro.campaign.spec.CampaignCell.fingerprint`; on resume the
runner skips every fingerprint already present, which makes the resumed
run bit-identical to an uninterrupted one (the flow itself is
deterministic per seed and executor-independent).

Robustness rules of :meth:`CampaignStore.load`:

* a truncated **final** line is ignored silently *only* when the file
  does not end with a newline (the classic kill-during-write artefact:
  :meth:`~CampaignStore.append` writes every complete record and its
  terminating ``\\n`` in one call, so an interrupted append can never
  leave a newline behind its partial record);
* a malformed line anywhere else — including a malformed final line in
  a newline-terminated file — means the file was corrupted, not
  interrupted, and raises :class:`CampaignStoreError` rather than
  silently dropping results;
* a duplicate fingerprint keeps the **first** record (completed cells
  are never re-executed, so a duplicate can only come from concurrent
  writers; keeping the first matches what a resume would have skipped).

Concurrent shard writers sharing one store file are serialised by a
best-effort advisory lock (``fcntl``/``msvcrt``) on a ``<store>.lock``
sidecar around the truncate+append critical section, so two processes
cannot interleave a tail truncation with another's in-flight append.

:meth:`CampaignStore.merge` unions N shard stores by cell fingerprint
into one store — the distributed aggregation step that lets n CI jobs
each run one ``--shard i/n`` into its own file.  Conflicting results
for the same fingerprint (same cell, different deterministic payload)
are an error; equal duplicates collapse to one record.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import ContextManager, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.campaign.spec import CampaignCell, CampaignError

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - platform-dependent
    fcntl = None  # type: ignore[assignment]
try:  # Windows
    import msvcrt
except ImportError:
    msvcrt = None  # type: ignore[assignment]

#: Version of the record schema; bump on breaking layout changes.
STORE_SCHEMA_VERSION = 1

#: Prefix/suffix of default store file names (``CAMPAIGN_<name>.jsonl``).
STORE_PREFIX = "CAMPAIGN_"
STORE_SUFFIX = ".jsonl"


class CampaignStoreError(CampaignError):
    """A campaign store file is structurally invalid."""


def default_store_path(name: str, directory: str = ".") -> str:
    """Canonical store path ``<directory>/CAMPAIGN_<name>.jsonl``.

    Sanitising the name can collide (``a/b`` and ``a:b`` both map to
    ``a-b``); whenever sanitisation changed the name, a short hash of
    the *original* name is appended so two distinct campaigns can never
    silently share one checkpoint file.
    """
    safe = "".join(c if (c.isalnum() or c in "-_.") else "-" for c in name)
    if safe != name:
        digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:8]
        safe = f"{safe}-{digest}"
    return os.path.join(directory, f"{STORE_PREFIX}{safe}{STORE_SUFFIX}")


@contextlib.contextmanager
def _advisory_lock(path: str) -> Iterator[None]:
    """Best-effort exclusive advisory file lock (no-op without a backend)."""
    if fcntl is None and msvcrt is None:  # pragma: no cover - exotic platform
        yield
        return
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "a+b") as handle:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        else:  # pragma: no cover - Windows
            handle.seek(0)
            msvcrt.locking(handle.fileno(), msvcrt.LK_LOCK, 1)
        try:
            yield
        finally:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            else:  # pragma: no cover - Windows
                handle.seek(0)
                msvcrt.locking(handle.fileno(), msvcrt.LK_UNLCK, 1)


def validate_record(record: object) -> Dict[str, object]:
    """Structural validation of one store record (raises on mismatch)."""
    if not isinstance(record, dict):
        raise CampaignStoreError("store record must be a JSON object")
    version = record.get("schema_version")
    if not isinstance(version, int):
        raise CampaignStoreError("store record is missing an integer 'schema_version'")
    if version > STORE_SCHEMA_VERSION:
        raise CampaignStoreError(
            f"store record schema version {version} is newer than supported "
            f"{STORE_SCHEMA_VERSION}"
        )
    fingerprint = record.get("fingerprint")
    if not isinstance(fingerprint, str) or not fingerprint:
        raise CampaignStoreError("store record is missing its 'fingerprint'")
    cell = record.get("cell")
    if not isinstance(cell, dict):
        raise CampaignStoreError("store record is missing its 'cell' object")
    try:
        declared = CampaignCell.from_dict(cell)
    except (CampaignError, TypeError, ValueError) as error:
        raise CampaignStoreError(f"store record has an invalid cell: {error}") from None
    if declared.fingerprint() != fingerprint:
        raise CampaignStoreError(
            f"record fingerprint {fingerprint!r} does not match its cell "
            f"parameters ({declared.fingerprint()!r})"
        )
    if not isinstance(record.get("result"), dict):
        raise CampaignStoreError("store record is missing its 'result' object")
    return record


class CampaignStore:
    """Append-only JSONL store of completed campaign cells.

    The store is cheap to construct — nothing is read until
    :meth:`load` / :meth:`fingerprints` — and safe to point at a path
    that does not exist yet (an empty campaign).
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)

    # ------------------------------------------------------------------
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> Dict[str, Dict[str, object]]:
        """All records keyed by cell fingerprint (see module docstring)."""
        if not self.exists():
            return {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise CampaignStoreError(
                f"cannot read campaign store {self.path!r}: {error}"
            ) from error
        lines = text.split("\n")
        # Every *complete* record ends with a newline written in the same
        # call as the record itself, so only a file NOT ending in "\n"
        # can carry an interrupted-append artefact on its final line.
        newline_terminated = text.endswith("\n")
        records: Dict[str, Dict[str, object]] = {}
        # Trailing empty strings come from the final newline; drop them so
        # "the last line" below is the last line with content.
        while lines and lines[-1] == "":
            lines.pop()
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = validate_record(json.loads(line))
            except (json.JSONDecodeError, CampaignStoreError) as error:
                if position == len(lines) - 1 and not newline_terminated:
                    # Interrupted mid-append: the record was never
                    # completed, so the cell simply re-runs on resume.
                    break
                raise CampaignStoreError(
                    f"campaign store {self.path!r} line {position + 1} is corrupt: {error}"
                ) from None
            records.setdefault(str(record["fingerprint"]), record)
        return records

    def fingerprints(self) -> Set[str]:
        """Fingerprints of all completed cells."""
        return set(self.load())

    def records_in_order(self) -> List[Dict[str, object]]:
        """Records sorted by their cells' deterministic expansion order."""
        records = list(self.load().values())
        records.sort(key=_record_sort_key)
        return records

    # ------------------------------------------------------------------
    def lock(self) -> ContextManager[None]:
        """Advisory exclusive lock on this store (``<path>.lock`` sidecar).

        Best-effort: serialises the truncate+append critical section
        between concurrent shard writers on platforms with ``fcntl`` or
        ``msvcrt``; a no-op elsewhere.
        """
        return _advisory_lock(self.path + ".lock")

    # ------------------------------------------------------------------
    def _truncate_partial_tail(self) -> None:
        """Drop a partial trailing record left by a kill mid-append.

        Every complete record ends with a newline written in the same
        call, so a file not ending in ``\\n`` carries an incomplete tail.
        Truncating it *before* appending keeps the invariant that
        corruption can only ever live on the final line — which
        :meth:`load` tolerates — never in the middle of the file.
        """
        if not self.exists():
            return
        with open(self.path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            content = handle.read()
            keep = content.rfind(b"\n") + 1
            handle.truncate(keep)

    def append(self, record: Dict[str, object]) -> None:
        """Durably append one completed-cell record (validate, write, fsync).

        The truncate+append pair runs under the store's advisory lock so
        two shard processes sharing one store cannot interleave a tail
        truncation with another writer's in-flight record.
        """
        validate_record(record)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with self.lock():
            self._truncate_partial_tail()
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    @classmethod
    def merge(
        cls, output_path: str, input_paths: Sequence[str]
    ) -> "MergeSummary":
        """Union N shard stores into one store at ``output_path``.

        Records are keyed by cell fingerprint.  Two records for the same
        fingerprint with equal deterministic content (cell parameters +
        result payload; the wall-clock envelope is ignored) collapse to
        the first occurrence; *conflicting* content raises
        :class:`CampaignStoreError` — the same cell can never honestly
        produce two different results, so a conflict means one input is
        wrong and silently keeping either would corrupt the report.

        The output is written atomically (temp file + rename) in the
        cells' deterministic expansion order, so a report built from the
        merged store is byte-identical to one built from a single
        unsharded run of the same spec.
        """
        if not input_paths:
            raise CampaignStoreError("merge needs at least one input store")
        merged: Dict[str, Dict[str, object]] = {}
        origin: Dict[str, str] = {}
        n_duplicates = 0
        per_input: List[Tuple[str, int]] = []
        for path in input_paths:
            store = cls(path)
            if not store.exists():
                raise CampaignStoreError(
                    f"campaign store {path!r} does not exist"
                )
            records = store.load()
            per_input.append((str(path), len(records)))
            for fingerprint, record in records.items():
                existing = merged.get(fingerprint)
                if existing is not None:
                    if deterministic_content(existing) != deterministic_content(record):
                        raise CampaignStoreError(
                            f"conflicting results for cell fingerprint "
                            f"{fingerprint!r}: {origin[fingerprint]!r} and "
                            f"{path!r} disagree on its deterministic content"
                        )
                    n_duplicates += 1
                    continue
                merged[fingerprint] = record
                origin[fingerprint] = str(path)
        ordered = sorted(merged.values(), key=_record_sort_key)
        directory = os.path.dirname(os.path.abspath(output_path))
        os.makedirs(directory, exist_ok=True)
        temp_path = output_path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            for record in ordered:
                handle.write(
                    json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, output_path)
        return MergeSummary(
            output=str(output_path),
            n_records=len(ordered),
            n_duplicates=n_duplicates,
            per_input=per_input,
        )


@dataclass
class MergeSummary:
    """What one :meth:`CampaignStore.merge` call produced.

    Attributes
    ----------
    output:
        Path of the merged store.
    n_records:
        Distinct cell records in the merged store.
    n_duplicates:
        Records dropped because an earlier input already carried an
        identical record for the same fingerprint.
    per_input:
        ``(path, n_records)`` of every input store, in argument order.
    """

    output: str
    n_records: int
    n_duplicates: int
    per_input: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def n_inputs(self) -> int:
        return len(self.per_input)

    def as_dict(self) -> Dict[str, object]:
        return {
            "output": self.output,
            "n_records": self.n_records,
            "n_duplicates": self.n_duplicates,
            "n_inputs": self.n_inputs,
            "inputs": [
                {"path": path, "n_records": count} for path, count in self.per_input
            ],
        }


def deterministic_content(record: Dict[str, object]) -> str:
    """Canonical serialisation of a record's result-bearing fields.

    Only the cell parameters and the result payload count — the envelope
    (``runtime_seconds``, ``completed_unix``) is wall-clock and differs
    between honest re-runs of the same cell.
    """
    return json.dumps(
        {"cell": record["cell"], "result": record["result"]},
        sort_keys=True,
        separators=(",", ":"),
    )


def _record_sort_key(record: Dict[str, object]) -> Tuple:
    """Deterministic record order: cell expansion order, then fingerprint.

    The fingerprint tiebreaks cells that share a sort key (e.g. the same
    matrix point under two ``design_seed`` values), keeping the merged
    file byte-stable regardless of input order.
    """
    cell = CampaignCell.from_dict(dict(record["cell"]))
    return (cell.sort_key(), str(record["fingerprint"]))


def make_record(
    cell: CampaignCell,
    result: Dict[str, object],
    runtime_seconds: float,
    completed_unix: Optional[float] = None,
) -> Dict[str, object]:
    """Assemble one store record.

    ``result`` must contain only deterministic quantities (the report is
    built from it and must be bit-identical across resumed runs);
    wall-clock lives in the record envelope instead.
    """
    import time

    return {
        "schema_version": STORE_SCHEMA_VERSION,
        "fingerprint": cell.fingerprint(),
        "cell": cell.as_dict(),
        "result": dict(result),
        "runtime_seconds": float(runtime_seconds),
        "completed_unix": float(time.time() if completed_unix is None else completed_unix),
    }
