"""Checkpointed campaign result store over a pluggable storage backend.

One record per completed cell, durably appended the moment the cell
finishes, so a campaign killed at any point loses at most the cell that
was in flight.  Records are content-addressed by the cell's
:meth:`~repro.campaign.spec.CampaignCell.fingerprint`; on resume the
runner skips every fingerprint already present, which makes the resumed
run bit-identical to an uninterrupted one (the flow itself is
deterministic per seed and executor-independent).

Since PR 7 the on-disk format is pluggable (:mod:`repro.store`):
stores are addressed by URI — ``jsonl:path`` (the zero-dep default,
preserving the PR 4/5 kill-mid-append tolerance, corruption rules and
byte-identical merge semantics) or ``sqlite:path`` (WAL mode,
transactional upserts, safe true-concurrent writers) — and opened with
:meth:`CampaignStore.open`.  Bare paths infer ``jsonl``, so the old
``CampaignStore(path)`` constructor keeps working (with a
``DeprecationWarning`` pointing at the URI form).  Reports built over
either driver are byte-identical: the storage layer round-trips records
value-exactly and every report order derives from the cells, not the
file.

Duplicate fingerprints keep the **first** record (completed cells are
never re-executed, so a duplicate can only come from concurrent
writers; keeping the first matches what a resume would have skipped).

:meth:`CampaignStore.merge` unions N shard stores by cell fingerprint
into one store — the distributed aggregation step that lets n CI jobs
each run one ``--shard i/n`` into its own file.  Conflicting results
for the same fingerprint (same cell, different deterministic content)
are an error; equal duplicates collapse to one record.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass, field
from typing import ContextManager, Dict, List, Optional, Sequence, Set, Tuple

from repro.campaign.spec import CampaignCell, CampaignError
from repro.store import StoreBackend, StoreError, StoreTransaction, open_store

#: Version of the record schema; bump on breaking layout changes.
STORE_SCHEMA_VERSION = 1

#: Prefix/suffix of default store file names (``CAMPAIGN_<name>.jsonl``).
STORE_PREFIX = "CAMPAIGN_"
STORE_SUFFIX = ".jsonl"


class CampaignStoreError(CampaignError, StoreError):
    """A campaign store is structurally invalid or addressed incorrectly."""


def default_store_path(name: str, directory: str = ".") -> str:
    """Canonical store path ``<directory>/CAMPAIGN_<name>.jsonl``.

    Sanitising the name can collide (``a/b`` and ``a:b`` both map to
    ``a-b``); whenever sanitisation changed the name, a short hash of
    the *original* name is appended so two distinct campaigns can never
    silently share one checkpoint file.
    """
    safe = "".join(c if (c.isalnum() or c in "-_.") else "-" for c in name)
    if safe != name:
        digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:8]
        safe = f"{safe}-{digest}"
    return os.path.join(directory, f"{STORE_PREFIX}{safe}{STORE_SUFFIX}")


def validate_record(record: object) -> Dict[str, object]:
    """Structural validation of one store record (raises on mismatch)."""
    if not isinstance(record, dict):
        raise CampaignStoreError("store record must be a JSON object")
    version = record.get("schema_version")
    if not isinstance(version, int):
        raise CampaignStoreError("store record is missing an integer 'schema_version'")
    if version > STORE_SCHEMA_VERSION:
        raise CampaignStoreError(
            f"store record schema version {version} is newer than supported "
            f"{STORE_SCHEMA_VERSION}"
        )
    fingerprint = record.get("fingerprint")
    if not isinstance(fingerprint, str) or not fingerprint:
        raise CampaignStoreError("store record is missing its 'fingerprint'")
    cell = record.get("cell")
    if not isinstance(cell, dict):
        raise CampaignStoreError("store record is missing its 'cell' object")
    try:
        declared = CampaignCell.from_dict(cell)
    except (CampaignError, TypeError, ValueError) as error:
        raise CampaignStoreError(f"store record has an invalid cell: {error}") from None
    if declared.fingerprint() != fingerprint:
        raise CampaignStoreError(
            f"record fingerprint {fingerprint!r} does not match its cell "
            f"parameters ({declared.fingerprint()!r})"
        )
    if not isinstance(record.get("result"), dict):
        raise CampaignStoreError("store record is missing its 'result' object")
    return record


def open_campaign_backend(uri: str) -> StoreBackend:
    """Open a :mod:`repro.store` backend configured for campaign records."""
    return open_store(uri, validator=validate_record, error=CampaignStoreError)


class CampaignStore:
    """Campaign result store: a thin domain layer over a store backend.

    The store is cheap to construct — nothing is read until
    :meth:`load` / :meth:`fingerprints` — and safe to point at a path
    that does not exist yet (an empty campaign).

    Construct with :meth:`open` and a store URI (``jsonl:path``,
    ``sqlite:path``, or a bare path inferring ``jsonl``).  The legacy
    path-only constructor still works but is deprecated.
    """

    def __init__(self, path: Optional[str] = None, *, backend: Optional[StoreBackend] = None) -> None:
        if backend is not None:
            if path is not None:
                raise TypeError("pass either a path or a backend, not both")
            self.backend = backend
            return
        if path is None:
            raise TypeError("CampaignStore needs a store URI (or a backend)")
        warnings.warn(
            "CampaignStore(path) is deprecated; use "
            "CampaignStore.open('jsonl:<path>') (or another store URI)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.backend = open_campaign_backend(str(path))

    @classmethod
    def open(cls, uri: str) -> "CampaignStore":
        """Open the campaign store addressed by a store URI."""
        return cls(backend=open_campaign_backend(str(uri)))

    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """Filesystem path of the backing store file."""
        return self.backend.path

    @property
    def uri(self) -> str:
        """The ``driver:path`` URI addressing this store."""
        return self.backend.uri

    def exists(self) -> bool:
        return self.backend.exists()

    def close(self) -> None:
        self.backend.close()

    def load(self) -> Dict[str, Dict[str, object]]:
        """All records keyed by cell fingerprint (first write wins)."""
        return self.backend.load()

    def history(self) -> List[Dict[str, object]]:
        """Every appended record in append order (duplicates included)."""
        return self.backend.history()

    def fingerprints(self) -> Set[str]:
        """Fingerprints of all completed cells."""
        return self.backend.fingerprints()

    def records_in_order(self) -> List[Dict[str, object]]:
        """Records sorted by their cells' deterministic expansion order."""
        records = list(self.load().values())
        records.sort(key=_record_sort_key)
        return records

    # ------------------------------------------------------------------
    def transaction(self) -> ContextManager[StoreTransaction]:
        """Exclusive read-check-append critical section on this store.

        Advisory ``<path>.lock`` sidecar for the JSONL driver,
        ``BEGIN IMMEDIATE`` for SQLite — either way, two concurrent
        publishers cannot interleave between checking a fingerprint and
        appending its record.
        """
        return self.backend.transaction()

    def lock(self) -> ContextManager[StoreTransaction]:
        """Deprecated alias of :meth:`transaction`."""
        return self.transaction()

    def append(self, record: Dict[str, object]) -> None:
        """Durably append one completed-cell record (validate, write, sync)."""
        self.backend.append(record)

    def ingest(self, record: Dict[str, object]) -> bool:
        """Fold one record into the store's history (idempotent).

        The bulk accumulation path for trend stores: re-ingesting an
        identical record is a no-op.  Returns ``True`` when new.
        """
        return self.backend.ingest(record)

    # ------------------------------------------------------------------
    @classmethod
    def merge(
        cls, output_uri: str, input_uris: Sequence[str]
    ) -> "MergeSummary":
        """Union N shard stores into the store addressed by ``output_uri``.

        Records are keyed by cell fingerprint.  Two records for the same
        fingerprint with equal deterministic content (cell parameters +
        result payload; the wall-clock envelope is ignored) collapse to
        the first occurrence; *conflicting* content raises
        :class:`CampaignStoreError` — the same cell can never honestly
        produce two different results, so a conflict means one input is
        wrong and silently keeping either would corrupt the report.

        Inputs and output are store URIs and may mix drivers freely.
        The output is written atomically (temp file + rename for JSONL,
        one transaction for SQLite) in the cells' deterministic
        expansion order, so a report built from the merged store is
        byte-identical to one built from a single unsharded run of the
        same spec.
        """
        if not input_uris:
            raise CampaignStoreError("merge needs at least one input store")
        merged: Dict[str, Dict[str, object]] = {}
        origin: Dict[str, str] = {}
        n_duplicates = 0
        per_input: List[Tuple[str, int]] = []
        for uri in input_uris:
            store = cls.open(uri)
            if not store.exists():
                raise CampaignStoreError(
                    f"campaign store {store.path!r} does not exist"
                )
            records = store.load()
            per_input.append((str(uri), len(records)))
            for fingerprint, record in records.items():
                existing = merged.get(fingerprint)
                if existing is not None:
                    if deterministic_content(existing) != deterministic_content(record):
                        raise CampaignStoreError(
                            f"conflicting results for cell fingerprint "
                            f"{fingerprint!r}: {origin[fingerprint]!r} and "
                            f"{uri!r} disagree on its deterministic content"
                        )
                    n_duplicates += 1
                    continue
                merged[fingerprint] = record
                origin[fingerprint] = str(uri)
        ordered = sorted(merged.values(), key=_record_sort_key)
        output = cls.open(output_uri)
        output.backend.replace_all(ordered)
        return MergeSummary(
            output=output.path,
            n_records=len(ordered),
            n_duplicates=n_duplicates,
            per_input=per_input,
        )


@dataclass
class MergeSummary:
    """What one :meth:`CampaignStore.merge` call produced.

    Attributes
    ----------
    output:
        Path of the merged store.
    n_records:
        Distinct cell records in the merged store.
    n_duplicates:
        Records dropped because an earlier input already carried an
        identical record for the same fingerprint.
    per_input:
        ``(uri, n_records)`` of every input store, in argument order.
    """

    output: str
    n_records: int
    n_duplicates: int
    per_input: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def n_inputs(self) -> int:
        return len(self.per_input)

    def as_dict(self) -> Dict[str, object]:
        return {
            "output": self.output,
            "n_records": self.n_records,
            "n_duplicates": self.n_duplicates,
            "n_inputs": self.n_inputs,
            "inputs": [
                {"path": path, "n_records": count} for path, count in self.per_input
            ],
        }


def deterministic_content(record: Dict[str, object]) -> str:
    """Canonical serialisation of a record's result-bearing fields.

    Only the cell parameters and the result payload count — the envelope
    (``runtime_seconds``, ``completed_unix``) is wall-clock and differs
    between honest re-runs of the same cell.
    """
    return json.dumps(
        {"cell": record["cell"], "result": record["result"]},
        sort_keys=True,
        separators=(",", ":"),
    )


def _record_sort_key(record: Dict[str, object]) -> Tuple:
    """Deterministic record order: cell expansion order, then fingerprint.

    The fingerprint tiebreaks cells that share a sort key (e.g. the same
    matrix point under two ``design_seed`` values), keeping the merged
    file byte-stable regardless of input order.
    """
    cell = CampaignCell.from_dict(dict(record["cell"]))
    return (cell.sort_key(), str(record["fingerprint"]))


def make_record(
    cell: CampaignCell,
    result: Dict[str, object],
    runtime_seconds: float,
    completed_unix: Optional[float] = None,
) -> Dict[str, object]:
    """Assemble one store record.

    ``result`` must contain only deterministic quantities (the report is
    built from it and must be bit-identical across resumed runs);
    wall-clock lives in the record envelope instead.
    """
    import time

    return {
        "schema_version": STORE_SCHEMA_VERSION,
        "fingerprint": cell.fingerprint(),
        "cell": cell.as_dict(),
        "result": dict(result),
        "runtime_seconds": float(runtime_seconds),
        "completed_unix": float(time.time() if completed_unix is None else completed_unix),
    }
