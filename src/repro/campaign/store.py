"""Checkpointed JSONL campaign result store.

One line per completed cell, appended **and fsynced** the moment the
cell finishes, so a campaign killed at any point loses at most the cell
that was in flight.  Records are content-addressed by the cell's
:meth:`~repro.campaign.spec.CampaignCell.fingerprint`; on resume the
runner skips every fingerprint already present, which makes the resumed
run bit-identical to an uninterrupted one (the flow itself is
deterministic per seed and executor-independent).

Robustness rules of :meth:`CampaignStore.load`:

* a truncated **final** line (the classic kill-during-write artefact) is
  ignored silently;
* a malformed line anywhere *before* the final one means the file was
  corrupted, not interrupted — that raises :class:`CampaignStoreError`
  rather than silently dropping results;
* a duplicate fingerprint keeps the **first** record (completed cells
  are never re-executed, so a duplicate can only come from concurrent
  writers; keeping the first matches what a resume would have skipped).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Set

from repro.campaign.spec import CampaignCell, CampaignError

#: Version of the record schema; bump on breaking layout changes.
STORE_SCHEMA_VERSION = 1

#: Prefix/suffix of default store file names (``CAMPAIGN_<name>.jsonl``).
STORE_PREFIX = "CAMPAIGN_"
STORE_SUFFIX = ".jsonl"


class CampaignStoreError(CampaignError):
    """A campaign store file is structurally invalid."""


def default_store_path(name: str, directory: str = ".") -> str:
    """Canonical store path ``<directory>/CAMPAIGN_<name>.jsonl``."""
    safe = "".join(c if (c.isalnum() or c in "-_.") else "-" for c in name)
    return os.path.join(directory, f"{STORE_PREFIX}{safe}{STORE_SUFFIX}")


def validate_record(record: object) -> Dict[str, object]:
    """Structural validation of one store record (raises on mismatch)."""
    if not isinstance(record, dict):
        raise CampaignStoreError("store record must be a JSON object")
    version = record.get("schema_version")
    if not isinstance(version, int):
        raise CampaignStoreError("store record is missing an integer 'schema_version'")
    if version > STORE_SCHEMA_VERSION:
        raise CampaignStoreError(
            f"store record schema version {version} is newer than supported "
            f"{STORE_SCHEMA_VERSION}"
        )
    fingerprint = record.get("fingerprint")
    if not isinstance(fingerprint, str) or not fingerprint:
        raise CampaignStoreError("store record is missing its 'fingerprint'")
    cell = record.get("cell")
    if not isinstance(cell, dict):
        raise CampaignStoreError("store record is missing its 'cell' object")
    try:
        declared = CampaignCell.from_dict(cell)
    except (CampaignError, TypeError, ValueError) as error:
        raise CampaignStoreError(f"store record has an invalid cell: {error}") from None
    if declared.fingerprint() != fingerprint:
        raise CampaignStoreError(
            f"record fingerprint {fingerprint!r} does not match its cell "
            f"parameters ({declared.fingerprint()!r})"
        )
    if not isinstance(record.get("result"), dict):
        raise CampaignStoreError("store record is missing its 'result' object")
    return record


class CampaignStore:
    """Append-only JSONL store of completed campaign cells.

    The store is cheap to construct — nothing is read until
    :meth:`load` / :meth:`fingerprints` — and safe to point at a path
    that does not exist yet (an empty campaign).
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)

    # ------------------------------------------------------------------
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> Dict[str, Dict[str, object]]:
        """All records keyed by cell fingerprint (see module docstring)."""
        if not self.exists():
            return {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.read().split("\n")
        except OSError as error:
            raise CampaignStoreError(
                f"cannot read campaign store {self.path!r}: {error}"
            ) from error
        records: Dict[str, Dict[str, object]] = {}
        # Trailing empty strings come from the final newline; drop them so
        # "the last line" below is the last line with content.
        while lines and lines[-1] == "":
            lines.pop()
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = validate_record(json.loads(line))
            except (json.JSONDecodeError, CampaignStoreError) as error:
                if position == len(lines) - 1:
                    # Interrupted mid-append: the record was never
                    # completed, so the cell simply re-runs on resume.
                    break
                raise CampaignStoreError(
                    f"campaign store {self.path!r} line {position + 1} is corrupt: {error}"
                ) from None
            records.setdefault(str(record["fingerprint"]), record)
        return records

    def fingerprints(self) -> Set[str]:
        """Fingerprints of all completed cells."""
        return set(self.load())

    def records_in_order(self) -> List[Dict[str, object]]:
        """Records sorted by their cells' deterministic expansion order."""
        records = list(self.load().values())
        records.sort(key=lambda r: CampaignCell.from_dict(dict(r["cell"])).sort_key())
        return records

    # ------------------------------------------------------------------
    def _truncate_partial_tail(self) -> None:
        """Drop a partial trailing record left by a kill mid-append.

        Every complete record ends with a newline written in the same
        call, so a file not ending in ``\\n`` carries an incomplete tail.
        Truncating it *before* appending keeps the invariant that
        corruption can only ever live on the final line — which
        :meth:`load` tolerates — never in the middle of the file.
        """
        if not self.exists():
            return
        with open(self.path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            content = handle.read()
            keep = content.rfind(b"\n") + 1
            handle.truncate(keep)

    def append(self, record: Dict[str, object]) -> None:
        """Durably append one completed-cell record (validate, write, fsync)."""
        validate_record(record)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._truncate_partial_tail()
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())


def make_record(
    cell: CampaignCell,
    result: Dict[str, object],
    runtime_seconds: float,
    completed_unix: Optional[float] = None,
) -> Dict[str, object]:
    """Assemble one store record.

    ``result`` must contain only deterministic quantities (the report is
    built from it and must be bit-identical across resumed runs);
    wall-clock lives in the record envelope instead.
    """
    import time

    return {
        "schema_version": STORE_SCHEMA_VERSION,
        "fingerprint": cell.fingerprint(),
        "cell": cell.as_dict(),
        "result": dict(result),
        "runtime_seconds": float(runtime_seconds),
        "completed_unix": float(time.time() if completed_unix is None else completed_unix),
    }
