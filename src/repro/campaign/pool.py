"""Shared content-addressed campaign result pool.

Cell fingerprints are content hashes over every result-affecting
parameter — they carry no notion of which *spec* a cell belongs to.  A
:class:`ResultPool` exploits that: one global store (same record format
as a per-spec :class:`~repro.campaign.store.CampaignStore`, any
:mod:`repro.store` driver) keyed by cell fingerprint, which any number
of campaign specs treat as a shared cache.  The runner consults the
pool before executing a cell and publishes every freshly computed
record into it, so overlapping specs — two campaigns sharing (circuit,
scale, sigma, solver, budget, replicate, seed, design_seed, baselines)
cells — reuse each other's completed work instead of recomputing it.
Per-spec stores remain the source of truth for reports; with a pool
attached they become materialized views over it (pool hits are copied
verbatim into the spec store, keeping reports byte-identical to a
pool-less run).

Note the overlap condition: per-cell seeds derive from the spec's
master ``seed``, so two specs only share cells when their ``seed``
(and ``design_seed`` / ``baselines``) agree on the overlapping matrix
points.  Grow a campaign by *extending* its spec (more budgets, more
circuits) rather than re-seeding it and the pool carries everything
already computed across the spec change.

Concurrency: :meth:`ResultPool.publish` runs its read-check-append
inside the backend's transaction (advisory lock for JSONL,
``BEGIN IMMEDIATE`` for SQLite), so two concurrent publishers cannot
interleave between the duplicate check and the append — each
fingerprint lands exactly once no matter how many workers race on it.
A record whose content *conflicts* with the pooled one raises — that
can only mean corruption or a seed-discipline bug, never an honest
race (results are deterministic per fingerprint).
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.campaign.store import (
    STORE_PREFIX,
    STORE_SUFFIX,
    CampaignStore,
    CampaignStoreError,
    deterministic_content,
    validate_record,
)

#: Name of the default shared pool file (``CAMPAIGN_pool.jsonl``).
DEFAULT_POOL_NAME = "pool"


def default_pool_path(directory: str = ".") -> str:
    """Canonical shared-pool path ``<directory>/CAMPAIGN_pool.jsonl``."""
    return os.path.join(directory, f"{STORE_PREFIX}{DEFAULT_POOL_NAME}{STORE_SUFFIX}")


class ResultPool:
    """One global content-addressed store shared by many campaign specs.

    Cheap to construct; the backing store is only read on first
    :meth:`lookup` / :meth:`records` and re-read by :meth:`refresh`
    (which the runner does once per invocation, to observe concurrent
    writers).  ``uri`` accepts a store URI (``jsonl:path`` /
    ``sqlite:path``) or a bare path, which infers the JSONL driver.
    """

    def __init__(self, uri: str) -> None:
        self.store = CampaignStore.open(str(uri))
        self._cache: Optional[Dict[str, Dict[str, object]]] = None

    @classmethod
    def open(cls, uri: str) -> "ResultPool":
        """Open the pool addressed by a store URI (alias of the constructor)."""
        return cls(uri)

    @property
    def path(self) -> str:
        return self.store.path

    @property
    def uri(self) -> str:
        return self.store.uri

    # ------------------------------------------------------------------
    def refresh(self) -> Dict[str, Dict[str, object]]:
        """Re-read the pool from disk (sees records other writers added)."""
        self._cache = self.store.load()
        return self._cache

    def records(self) -> Dict[str, Dict[str, object]]:
        """All pooled records keyed by fingerprint (cached after first read)."""
        if self._cache is None:
            return self.refresh()
        return self._cache

    def lookup(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """The pooled record for one cell fingerprint, if any."""
        return self.records().get(fingerprint)

    def __len__(self) -> int:
        return len(self.records())

    # ------------------------------------------------------------------
    def publish(self, record: Dict[str, object]) -> bool:
        """Add one completed-cell record to the pool (idempotent).

        Returns ``True`` when the record was appended, ``False`` when an
        identical record was already pooled.  A pooled record with
        *conflicting* deterministic content for the same fingerprint
        raises :class:`CampaignStoreError` — deterministic cells cannot
        honestly disagree, so the pool (or the publisher) is corrupt.

        The check-then-append pair runs inside the backend's
        transaction, re-reading the pooled record for this fingerprint
        under the exclusive critical section — so a record another
        writer pooled *after* our cached read is still seen, and no
        fingerprint can ever be appended twice by racing publishers.
        The cached view only short-circuits *known* duplicates (no lock
        taken when the record is already pooled).
        """
        validate_record(record)
        fingerprint = str(record["fingerprint"])
        cached = self._cache.get(fingerprint) if self._cache is not None else None
        if cached is not None:
            self._check_conflict(cached, record, fingerprint)
            return False
        with self.store.transaction() as txn:
            existing = txn.get(fingerprint)
            if existing is not None:
                self._check_conflict(existing, record, fingerprint)
                if self._cache is not None:
                    self._cache[fingerprint] = existing
                return False
            txn.append(record)
        if self._cache is not None:
            self._cache[fingerprint] = record
        return True

    def _check_conflict(
        self,
        existing: Dict[str, object],
        record: Dict[str, object],
        fingerprint: str,
    ) -> None:
        if deterministic_content(existing) != deterministic_content(record):
            raise CampaignStoreError(
                f"result pool {self.path!r} already holds a conflicting "
                f"record for cell fingerprint {fingerprint!r}"
            )


__all__ = ["DEFAULT_POOL_NAME", "ResultPool", "default_pool_path"]
