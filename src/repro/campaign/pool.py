"""Shared content-addressed campaign result pool.

Cell fingerprints are content hashes over every result-affecting
parameter — they carry no notion of which *spec* a cell belongs to.  A
:class:`ResultPool` exploits that: one global JSONL store (same format
as a per-spec :class:`~repro.campaign.store.CampaignStore`) keyed by
cell fingerprint, which any number of campaign specs treat as a shared
cache.  The runner consults the pool before executing a cell and
publishes every freshly computed record into it, so overlapping specs —
two campaigns sharing (circuit, scale, sigma, solver, budget,
replicate, seed, design_seed, baselines) cells — reuse each other's
completed work instead of recomputing it.  Per-spec stores remain the
source of truth for reports; with a pool attached they become
materialized views over it (pool hits are copied verbatim into the
spec store, keeping reports byte-identical to a pool-less run).

Note the overlap condition: per-cell seeds derive from the spec's
master ``seed``, so two specs only share cells when their ``seed``
(and ``design_seed`` / ``baselines``) agree on the overlapping matrix
points.  Grow a campaign by *extending* its spec (more budgets, more
circuits) rather than re-seeding it and the pool carries everything
already computed across the spec change.

Concurrency: appends go through the store's advisory lock, so
concurrent shard writers never corrupt the file.  ``publish`` checks
duplicates against the *cached* view (one pool read per runner
invocation); two racing writers that both miss the same fingerprint
each append their record and ``load`` keeps the first — benign,
because results are deterministic per fingerprint (equal-content
duplicates).  A record whose content *conflicts* with the pooled one
raises — that can only mean corruption or a seed-discipline bug,
never an honest race.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.campaign.store import (
    STORE_PREFIX,
    STORE_SUFFIX,
    CampaignStore,
    CampaignStoreError,
    deterministic_content,
    validate_record,
)

#: Name of the default shared pool file (``CAMPAIGN_pool.jsonl``).
DEFAULT_POOL_NAME = "pool"


def default_pool_path(directory: str = ".") -> str:
    """Canonical shared-pool path ``<directory>/CAMPAIGN_pool.jsonl``."""
    return os.path.join(directory, f"{STORE_PREFIX}{DEFAULT_POOL_NAME}{STORE_SUFFIX}")


class ResultPool:
    """One global content-addressed store shared by many campaign specs.

    Cheap to construct; the backing file is only read on first
    :meth:`lookup` / :meth:`records` and re-read by :meth:`refresh`
    (which :meth:`publish` always does, to observe concurrent writers).
    """

    def __init__(self, path: str) -> None:
        self.store = CampaignStore(path)
        self._cache: Optional[Dict[str, Dict[str, object]]] = None

    @property
    def path(self) -> str:
        return self.store.path

    # ------------------------------------------------------------------
    def refresh(self) -> Dict[str, Dict[str, object]]:
        """Re-read the pool from disk (sees records other writers added)."""
        self._cache = self.store.load()
        return self._cache

    def records(self) -> Dict[str, Dict[str, object]]:
        """All pooled records keyed by fingerprint (cached after first read)."""
        if self._cache is None:
            return self.refresh()
        return self._cache

    def lookup(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """The pooled record for one cell fingerprint, if any."""
        return self.records().get(fingerprint)

    def __len__(self) -> int:
        return len(self.records())

    # ------------------------------------------------------------------
    def publish(self, record: Dict[str, object]) -> bool:
        """Add one completed-cell record to the pool (idempotent).

        Returns ``True`` when the record was appended, ``False`` when an
        identical record was already pooled.  A pooled record with
        *conflicting* deterministic content for the same fingerprint
        raises :class:`CampaignStoreError` — deterministic cells cannot
        honestly disagree, so the pool (or the publisher) is corrupt.

        The duplicate check runs against the cached view (one pool read
        per runner invocation, not one per published cell).  A record
        another writer pooled *after* our last read is therefore
        appended again — benign, because the duplicate carries identical
        deterministic content and ``load`` keeps the first.
        """
        validate_record(record)
        fingerprint = str(record["fingerprint"])
        existing = self.records().get(fingerprint)
        if existing is not None:
            if deterministic_content(existing) != deterministic_content(record):
                raise CampaignStoreError(
                    f"result pool {self.path!r} already holds a conflicting "
                    f"record for cell fingerprint {fingerprint!r}"
                )
            return False
        self.store.append(record)
        if self._cache is not None:
            self._cache[fingerprint] = record
        return True


__all__ = ["DEFAULT_POOL_NAME", "ResultPool", "default_pool_path"]
