"""Sharded, resumable campaign execution on the sample-solving engine.

:class:`CampaignRunner` maps the expanded cells of a
:class:`~repro.campaign.spec.CampaignSpec` onto **one** engine executor
(:mod:`repro.engine`) for the whole run.  Because the engine keys its
warm worker state by the compiled constraint system's content
fingerprint (plus solver settings), and all cells of one
``(circuit, scale)`` share one design instance (the spec's
``design_seed`` is campaign-constant), a process pool started for the
first cell of a circuit stays warm across every later cell, budget and
replicate of that circuit — the campaign pays pool/compile start-up per
*design*, not per cell.

Resume discipline: before anything runs, the store's completed
fingerprints are loaded and matching cells are skipped outright.  Each
finished cell is appended durably the moment it completes, so a kill at
any point loses at most the in-flight cell.  The runner is
storage-agnostic: the store and pool it is handed are thin layers over
any :mod:`repro.store` backend (``jsonl:`` or ``sqlite:`` URIs,
resolved by the CLI), and resume/report semantics are identical across
drivers.  ``max_cells`` bounds how many
pending cells one invocation executes — useful for time-boxed CI legs
and for deterministic interruption tests.

Next to the proposed flow, every cell evaluates its configured baseline
strategies (every-FF / criticality / random) **on the same executor and
the same evaluation batch**, at the proposed plan's buffer count, so the
report's comparison columns are equal-area and equal-noise.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.harness import build_baseline_plan
from repro.campaign.pool import ResultPool
from repro.campaign.spec import CampaignCell, CampaignSpec, shard_cells
from repro.campaign.store import CampaignStore, make_record
from repro.core.flow import BufferInsertionFlow
from repro.core.results import FlowResult
from repro.engine import LogProgress, create_executor, gang_dispatch
from repro.obs.metrics import get_registry
from repro.obs.trace import span as trace_span
from repro.obs.trace import trace_context
from repro.yieldsim.estimator import YieldEstimator

#: Dispatch strategies of :class:`CampaignRunner` (CLI ``--dispatch``).
DISPATCH_CHOICES = ("batched", "sequential")


@dataclass(frozen=True)
class CampaignProgress:
    """One job-level progress tick of a running campaign.

    Emitted by :class:`CampaignRunner` every time a cell's record lands
    in the store — freshly executed (``source="run"``) or materialised
    from the shared result pool (``source="pool"``).  Long-lived callers
    (the service worker's lease heartbeat, progress UIs) hook these
    ticks via the runner's ``on_progress`` callback.

    Attributes
    ----------
    cell_id / fingerprint:
        The committed cell.
    position / total:
        1-based commit position within this invocation's budget.
    seconds:
        Wall-clock the cell took (0 for pool hits).
    source:
        ``"run"`` or ``"pool"``.
    """

    cell_id: str
    fingerprint: str
    position: int
    total: int
    seconds: float
    source: str = "run"

    def as_dict(self) -> Dict[str, object]:
        return {
            "cell_id": self.cell_id,
            "fingerprint": self.fingerprint,
            "position": self.position,
            "total": self.total,
            "seconds": self.seconds,
            "source": self.source,
        }


#: Signature of the runner's ``on_progress`` callback.
ProgressCallback = Callable[[CampaignProgress], None]


@dataclass
class CampaignRunSummary:
    """What one ``run()`` invocation did.

    Attributes
    ----------
    n_cells:
        Cells of this shard (after sharding, before resume skipping).
    n_completed_before:
        Cells already in the store when the run started.
    n_run:
        Cells executed by this invocation.
    n_pool_reused:
        Cells materialized from the shared result pool instead of being
        executed (always 0 without a pool).
    n_remaining:
        Cells still pending when the invocation returned (non-zero when
        ``max_cells`` stopped the run early).
    seconds:
        Wall-clock of this invocation.
    cell_ids_run:
        ``cell_id`` of every cell executed, in execution order.
    """

    n_cells: int
    n_completed_before: int
    n_run: int
    n_remaining: int
    seconds: float
    cell_ids_run: List[str] = field(default_factory=list)
    n_pool_reused: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "n_cells": self.n_cells,
            "n_completed_before": self.n_completed_before,
            "n_run": self.n_run,
            "n_pool_reused": self.n_pool_reused,
            "n_remaining": self.n_remaining,
            "seconds": self.seconds,
            "cell_ids_run": list(self.cell_ids_run),
        }


@dataclass
class CampaignStatus:
    """Completion state of a campaign spec against a store.

    ``cell_seconds`` maps every *completed* cell's ``cell_id`` to the
    ``runtime_seconds`` of its store record envelope — wall-clock
    bookkeeping, deliberately outside the deterministic result payload.
    """

    name: str
    n_cells: int
    n_completed: int
    pending_cell_ids: List[str] = field(default_factory=list)
    stale_fingerprints: List[str] = field(default_factory=list)
    cell_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.n_completed >= self.n_cells

    @property
    def total_recorded_seconds(self) -> float:
        """Summed wall-clock of every completed cell's record."""
        return float(sum(self.cell_seconds.values()))

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "n_cells": self.n_cells,
            "n_completed": self.n_completed,
            "complete": self.complete,
            "pending_cell_ids": list(self.pending_cell_ids),
            "stale_fingerprints": list(self.stale_fingerprints),
            "cell_seconds": dict(self.cell_seconds),
            "total_recorded_seconds": self.total_recorded_seconds,
        }


def campaign_status(spec: CampaignSpec, store: CampaignStore) -> CampaignStatus:
    """How much of ``spec`` is already completed in ``store``.

    Records whose fingerprint matches no cell of the spec are *stale*
    (the spec changed after they were recorded); they are reported but
    never deleted — re-pointing the spec back at them revives them.
    """
    by_fingerprint = spec.cells_by_fingerprint()
    records = store.load()
    return CampaignStatus(
        name=spec.name,
        n_cells=len(by_fingerprint),
        n_completed=sum(1 for fp in by_fingerprint if fp in records),
        pending_cell_ids=[
            cell.cell_id
            for fp, cell in by_fingerprint.items()
            if fp not in records
        ],
        stale_fingerprints=sorted(set(records) - set(by_fingerprint)),
        cell_seconds={
            # .get: the envelope is wall-clock bookkeeping, not part of
            # the validated schema — a record without it (hand-ingested,
            # older layout) must degrade to 0, not break status polls.
            cell.cell_id: float(records[fp].get("runtime_seconds", 0.0))
            for fp, cell in by_fingerprint.items()
            if fp in records
        },
    )


class CampaignRunner:
    """Execute (or resume) one campaign spec into a result store.

    Parameters
    ----------
    spec / store:
        The campaign matrix and its checkpointed JSONL store.
    executor / jobs:
        Engine backend shared by every cell of the run (results are
        executor-independent, so shards and resumes may mix backends).
    shard_index / shard_count:
        Round-robin shard this invocation is responsible for.
    max_cells:
        Execute at most this many pending cells, then return (``None``:
        run the whole shard).  Pool hits are free and never count
        against this budget.
    pool:
        Optional shared :class:`~repro.campaign.pool.ResultPool`.  Every
        pending cell already pooled is copied into the spec store
        instead of being executed, and every freshly computed record is
        published back, so overlapping specs reuse each other's cells.
    progress:
        ``True`` streams per-cell campaign lines (and per-phase engine
        lines, labelled with the cell id) to stderr.
    on_progress:
        Optional :data:`ProgressCallback` invoked after every committed
        cell (executed or pool-materialised).  The service worker uses
        it to heartbeat its queue lease while a long campaign runs;
        callback failures propagate (a heartbeat that cannot be
        extended must abort the run, not silently continue).
    dispatch:
        ``"batched"`` (default) groups runnable cells by compiled-system
        fingerprint and advances each group's flows in lockstep waves:
        every wave's engine phases are submitted together
        (:func:`repro.engine.gang_dispatch`) so one warm worker pool
        serves all cells of a design at once — including the baseline
        sweeps, which ship only ``(plan, step)`` pairs.
        ``"sequential"`` runs cells one after the other (the historical
        behaviour).  Results are bit-identical between the two; only
        the wall clock differs.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: CampaignStore,
        executor: str = "serial",
        jobs: Optional[int] = None,
        shard_index: int = 0,
        shard_count: int = 1,
        max_cells: Optional[int] = None,
        pool: Optional[ResultPool] = None,
        progress: bool = False,
        dispatch: str = "batched",
        on_progress: Optional[ProgressCallback] = None,
    ) -> None:
        if max_cells is not None and max_cells < 1:
            raise ValueError(f"max_cells must be >= 1, got {max_cells}")
        if dispatch not in DISPATCH_CHOICES:
            raise ValueError(
                f"dispatch must be one of {DISPATCH_CHOICES}, got {dispatch!r}"
            )
        self.spec = spec
        self.store = store
        self.executor_name = executor
        self.jobs = jobs
        self.shard_index = int(shard_index)
        self.shard_count = int(shard_count)
        self.max_cells = max_cells
        self.pool = pool
        self.progress = bool(progress)
        self.dispatch = dispatch
        self.on_progress = on_progress
        self._design_cache: Dict[Tuple[str, float, int], object] = {}

    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        if self.progress:
            print(f"[campaign] {message}", file=sys.stderr, flush=True)

    def _design_for(self, cell: CampaignCell):
        from repro.circuit.suite import build_suite_circuit

        key = (cell.circuit, cell.scale, cell.design_seed)
        if key not in self._design_cache:
            self._design_cache[key] = build_suite_circuit(
                cell.circuit, scale=cell.scale, seed=cell.design_seed
            )
        return self._design_cache[key]

    # ------------------------------------------------------------------
    def shard(self) -> List[CampaignCell]:
        """The cells this runner is responsible for.

        With a pool attached the partition is pool-aware: cells already
        pooled are round-robined separately from the cells that need a
        real flow run, so multi-job shards balance actual work (see
        :func:`~repro.campaign.spec.shard_cells`).
        """
        pooled = set(self.pool.records()) if self.pool is not None else None
        return shard_cells(
            self.spec.cells(),
            self.shard_index,
            self.shard_count,
            pooled_fingerprints=pooled,
        )

    def run(self) -> CampaignRunSummary:
        """Execute every pending cell of the shard (resuming from the store)."""
        start = time.perf_counter()
        cells = self.shard()
        completed = self.store.fingerprints()
        pending = [cell for cell in cells if cell.fingerprint() not in completed]
        pool_hits = self._materialize_pool_hits(pending)
        if pool_hits:
            hit_ids = set(pool_hits)
            pending = [cell for cell in pending if cell.cell_id not in hit_ids]
        budget = len(pending) if self.max_cells is None else min(self.max_cells, len(pending))
        self._log(
            f"campaign {self.spec.name!r}: {len(cells)} cells in shard "
            f"{self.shard_index + 1}/{self.shard_count}, "
            f"{len(cells) - len(pending) - len(pool_hits)} already complete, "
            f"{len(pool_hits)} reused from the pool, running {budget}"
        )

        run_ids: List[str] = []
        to_run = pending[:budget]
        executor = create_executor(self.executor_name, self.jobs)
        try:
            registry = get_registry()
            if self.dispatch == "batched" and len(to_run) > 1:
                run_ids = self._run_batched(to_run, executor)
            else:
                for cell in to_run:
                    cell_start = time.perf_counter()
                    # The span carries the cell's resume fingerprint; the
                    # trace_context makes every span opened underneath (flow
                    # stages, engine phases, worker-side chunks via payload
                    # labels) attributable to this cell.
                    with trace_span(
                        "campaign.cell",
                        cell=cell.cell_id,
                        fingerprint=cell.fingerprint(),
                        circuit=cell.circuit,
                    ), trace_context(cell=cell.cell_id):
                        record = self._run_cell(cell, executor)
                    registry.counter("campaign.cells.executed").inc()
                    registry.histogram("campaign.cell.seconds").observe(
                        time.perf_counter() - cell_start
                    )
                    self._commit_record(
                        cell,
                        record,
                        len(run_ids) + 1,
                        budget,
                        time.perf_counter() - cell_start,
                    )
                    run_ids.append(cell.cell_id)
        finally:
            executor.close()
        return CampaignRunSummary(
            n_cells=len(cells),
            n_completed_before=len(cells) - len(pending) - len(pool_hits),
            n_run=len(run_ids),
            n_remaining=len(pending) - len(run_ids),
            seconds=time.perf_counter() - start,
            cell_ids_run=run_ids,
            n_pool_reused=len(pool_hits),
        )

    def _materialize_pool_hits(self, pending: List[CampaignCell]) -> List[str]:
        """Copy pooled records for pending cells into the spec store.

        Returns the ``cell_id`` of every materialized cell.  The record
        is copied verbatim (envelope included), so a report over the
        spec store stays byte-identical to a pool-less run's.
        """
        if self.pool is None or not pending:
            return []
        pooled = self.pool.refresh()
        hits: List[str] = []
        for cell in pending:
            record = pooled.get(cell.fingerprint())
            if record is None:
                continue
            self.store.append(record)
            hits.append(cell.cell_id)
            if self.on_progress is not None:
                self.on_progress(
                    CampaignProgress(
                        cell_id=cell.cell_id,
                        fingerprint=cell.fingerprint(),
                        position=len(hits),
                        total=len(pending),
                        seconds=0.0,
                        source="pool",
                    )
                )
        registry = get_registry()
        registry.counter("campaign.pool.hits").inc(len(hits))
        registry.counter("campaign.pool.misses").inc(len(pending) - len(hits))
        return hits

    def _commit_record(
        self,
        cell: CampaignCell,
        record: Dict[str, object],
        position: int,
        budget: int,
        seconds: float,
    ) -> None:
        """Durably append one finished cell and log its headline numbers."""
        self.store.append(record)
        if self.pool is not None:
            self.pool.publish(record)
        if self.on_progress is not None:
            self.on_progress(
                CampaignProgress(
                    cell_id=cell.cell_id,
                    fingerprint=cell.fingerprint(),
                    position=position,
                    total=budget,
                    seconds=seconds,
                    source="run",
                )
            )
        self._log(
            f"cell {position}/{budget} {cell.cell_id}: "
            f"Y {100 * record['result']['improved_yield']:.2f} % "
            f"(Nb {record['result']['n_buffers']}) "
            f"in {seconds:.2f} s"
        )

    # ------------------------------------------------------------------
    # Batched (gang) dispatch
    # ------------------------------------------------------------------
    def _group_key(self, cell: CampaignCell) -> Tuple[str, str]:
        """Cells sharing this key share warm engine worker state: same
        compiled constraint system, same per-sample solver backend."""
        from repro.core.compiled import ensure_compiled_system

        design = self._design_for(cell)
        return (ensure_compiled_system(design).fingerprint(), cell.solver)

    def _run_batched(self, cells: List[CampaignCell], executor) -> List[str]:
        """Run the pending cells as fingerprint-grouped gangs.

        Cells of one group advance in lockstep waves: each wave collects
        every cell's next prepared engine phase and dispatches them as
        one submission burst over the shared warm pool
        (:func:`repro.engine.gang_dispatch`).  Results are bit-identical
        to sequential dispatch — phase inputs are purely per-cell and
        every phase merges by sample index — so only the wall clock
        changes.  Finished records are committed per group in cell
        order, keeping resume semantics (a kill loses at most the
        in-flight group).
        """
        order: List[Tuple[str, str]] = []
        groups: Dict[Tuple[str, str], List[Tuple[int, CampaignCell]]] = {}
        for index, cell in enumerate(cells):
            key = self._group_key(cell)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((index, cell))
        self._log(
            f"batched dispatch: {len(cells)} cells in {len(groups)} "
            f"compiled-system group(s) on {executor.name}"
        )

        run_ids: List[str] = []
        committed = 0
        for key in order:
            members = groups[key]
            records = self._run_group(members, executor)
            for index, cell in members:
                committed += 1
                record, seconds = records[index]
                self._commit_record(cell, record, committed, len(cells), seconds)
                run_ids.append(cell.cell_id)
        return run_ids

    def _run_group(
        self, members: List[Tuple[int, CampaignCell]], executor
    ) -> Dict[int, Tuple[Dict[str, object], float]]:
        """Advance one gang of same-fingerprint cells in lockstep waves."""
        registry = get_registry()
        drivers = []
        for index, cell in members:
            drivers.append(
                {
                    "index": index,
                    "cell": cell,
                    "gen": self._drive_cell(cell, executor, gang_width=len(members)),
                    "value": None,
                    "started": False,
                    "t0": time.perf_counter(),
                }
            )
        records: Dict[int, Tuple[Dict[str, object], float]] = {}
        active = drivers
        while active:
            wave = []
            for driver in active:
                cell = driver["cell"]
                # Context (not a span): spans must not stay open across
                # a generator suspension when several cells interleave
                # on this thread.  Every span and chunk label produced
                # while this cell's generator runs inherits the cell id.
                with trace_context(cell=cell.cell_id):
                    try:
                        if driver["started"]:
                            driver["pending"] = driver["gen"].send(driver["value"])
                        else:
                            driver["pending"] = next(driver["gen"])
                            driver["started"] = True
                        driver["value"] = None
                        wave.append(driver)
                    except StopIteration as stop:
                        seconds = time.perf_counter() - driver["t0"]
                        # Completion marker (near-zero duration — the
                        # cell's wall clock, inflated by interleaved
                        # peers, rides in the attrs instead).
                        with trace_span(
                            "campaign.cell",
                            cell=cell.cell_id,
                            fingerprint=cell.fingerprint(),
                            circuit=cell.circuit,
                            seconds=round(seconds, 6),
                        ):
                            pass
                        registry.counter("campaign.cells.executed").inc()
                        registry.histogram("campaign.cell.seconds").observe(seconds)
                        records[driver["index"]] = (stop.value, seconds)
            results = gang_dispatch([driver["pending"] for driver in wave], executor)
            for driver, value in zip(wave, results, strict=True):
                driver["value"] = value
                driver["pending"] = None
            active = wave
        return records

    def _drive_cell(self, cell: CampaignCell, executor, gang_width: int):
        """Generator running one cell cooperatively (flow + baselines).

        Yields :class:`~repro.engine.PendingPhase` objects and returns
        the finished store record; the wave loop supplies each phase's
        result via ``send``.
        """
        design = self._design_for(cell)
        engine_progress = LogProgress(prefix=cell.cell_id) if self.progress else None
        cell_start = time.perf_counter()
        flow = BufferInsertionFlow(
            design,
            cell.flow_config(),
            executor=executor,
            progress=engine_progress,
            gang_width=gang_width,
        )
        result = yield from flow.drive(executor)
        baselines = yield from self._drive_baselines(cell, design, result, flow.last_scheduler)
        runtime = time.perf_counter() - cell_start
        return make_record(
            cell,
            self._cell_payload(design, result, baselines),
            runtime_seconds=runtime,
        )

    def _drive_baselines(self, cell: CampaignCell, design, result: FlowResult, scheduler):
        """Cooperative twin of :meth:`_evaluate_baselines`.

        Bit-identical numbers, different transport: instead of shipping
        a configurator per plan (which restarts a warm process pool),
        every baseline sweep is prepared on the *flow's* scheduler and
        dispatched under its solver key — only the small ``(plan,
        step)`` pairs cross the process boundary, so a whole gang's
        baselines run on one warm pool.
        """
        if not cell.baselines:
            return {}
        from repro.campaign.spec import _derive_seed

        eval_seed = _derive_seed(cell.seed, "baseline-eval")
        estimator = YieldEstimator(design, n_samples=cell.n_eval_samples, rng=eval_seed)
        samples = estimator.draw_samples()
        analysis = estimator.period_analysis(samples)
        period = float(result.target_period)
        original = float(analysis.yield_at(period))
        setup_bounds = samples.setup_bounds(period)
        hold_bounds = samples.hold_bounds()
        reports: Dict[str, Dict[str, float]] = {}
        for name in cell.baselines:
            plan = build_baseline_plan(
                name,
                design,
                result.target_period,
                n_buffers=result.plan.n_buffers,
                rng=_derive_seed(cell.seed, "baseline-plan", name),
            )
            step = plan.buffers[0].step if plan.buffers else 0.0
            passed, _ = yield scheduler.prepare_evaluate_plan(
                setup_bounds, hold_bounds, plan, float(step), phase="baseline_eval"
            )
            tuned = float(np.mean(passed)) if passed.size else 1.0
            reports[name] = {
                "n_buffers": int(plan.n_buffers),
                "original_yield": original,
                "tuned_yield": tuned,
                "yield_improvement": tuned - original,
            }
        return reports

    # ------------------------------------------------------------------
    @staticmethod
    def _cell_payload(
        design, result: FlowResult, baselines: Dict[str, Dict[str, float]]
    ) -> Dict[str, object]:
        """The deterministic result payload of one finished cell."""
        stats = design.netlist.stats()
        return {
            "n_flip_flops": int(stats["flip_flops"]),
            "n_gates": int(stats["gates"]),
            "target_period": float(result.target_period),
            "mu_period": float(result.mu_period),
            "sigma_period": float(result.sigma_period),
            "n_buffers": int(result.plan.n_buffers),
            "n_physical_buffers": int(result.plan.n_physical_buffers),
            "average_range_steps": float(result.plan.average_range_steps),
            "original_yield": float(result.original_yield),
            "improved_yield": float(result.improved_yield),
            "yield_improvement": float(result.yield_improvement),
            "plan": result.plan.as_dict(),
            "baselines": baselines,
        }

    def _run_cell(self, cell: CampaignCell, executor) -> Dict[str, object]:
        """Run one cell (flow + baselines) and assemble its store record."""
        design = self._design_for(cell)
        engine_progress = (
            LogProgress(prefix=cell.cell_id) if self.progress else None
        )
        cell_start = time.perf_counter()
        flow = BufferInsertionFlow(
            design, cell.flow_config(), executor=executor, progress=engine_progress
        )
        result = flow.run()
        baselines = self._evaluate_baselines(cell, design, result, executor)
        runtime = time.perf_counter() - cell_start
        return make_record(
            cell,
            self._cell_payload(design, result, baselines),
            runtime_seconds=runtime,
        )

    def _evaluate_baselines(
        self, cell: CampaignCell, design, result: FlowResult, executor
    ) -> Dict[str, Dict[str, float]]:
        """Evaluate the cell's baseline strategies on the shared executor.

        All strategies are scored on **one** evaluation batch (drawn from
        a seed derived from the cell seed) and capped at the proposed
        plan's buffer count, so the comparison is equal-noise and
        equal-area.  The sweep reuses the engine's warm worker state: the
        estimator runs on the same compiled system fingerprint as the
        flow that just finished.
        """
        if not cell.baselines:
            return {}
        from repro.campaign.spec import _derive_seed

        eval_seed = _derive_seed(cell.seed, "baseline-eval")
        estimator = YieldEstimator(
            design,
            n_samples=cell.n_eval_samples,
            rng=eval_seed,
            executor=executor,
        )
        samples = estimator.draw_samples()
        reports: Dict[str, Dict[str, float]] = {}
        for name in cell.baselines:
            plan = build_baseline_plan(
                name,
                design,
                result.target_period,
                n_buffers=result.plan.n_buffers,
                rng=_derive_seed(cell.seed, "baseline-plan", name),
            )
            report = estimator.evaluate_plan(
                plan, result.target_period, constraint_samples=samples
            )
            reports[name] = {
                "n_buffers": int(plan.n_buffers),
                "original_yield": float(report.original_yield),
                "tuned_yield": float(report.tuned_yield),
                "yield_improvement": float(report.yield_improvement),
            }
        return reports
