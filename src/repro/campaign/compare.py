"""Campaign store diffing and the quality-regression gate.

:func:`compare_stores` joins two campaign result stores on cell
fingerprint — no spec needed, every record embeds its full cell
identity — and computes per-cell yield, period and buffer-count deltas.
:func:`gate_comparison` turns the diff into a pass/fail verdict, the
campaign sibling of ``repro bench compare|gate``:

* a cell **fails** when its tuned yield dropped by strictly more than
  ``max_yield_drop`` percentage points (results are deterministic per
  fingerprint, so any drop is a real behaviour change, but the
  threshold lets a gate tolerate known-noisy replicate cells);
* a cell fails when its buffer count grew by strictly more than
  ``max_buffer_increase`` (more tuning area for the same matrix point);
* cells present in the old store but missing from the new one fail
  (a campaign that silently stopped covering a cell is a regression);
  cells only in the new store are reported but never fail;
* period deltas (target and ``mu``) are reported for context but not
  gated — they characterise the un-tuned circuit, which only moves
  when the timing model itself changes.

The CLI surface is ``repro campaign compare old.jsonl new.jsonl
[--gate]``: exit 0 on pass, 1 on a gated regression, 2 on artifact
errors — mirroring ``bench gate``'s contract so CI treats both alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.campaign.report import record_row
from repro.campaign.spec import CampaignCell
from repro.campaign.store import CampaignStore

#: Default tolerated tuned-yield drop, in percentage points (inclusive).
DEFAULT_MAX_YIELD_DROP = 0.5

#: Default tolerated buffer-count increase per cell (inclusive).
DEFAULT_MAX_BUFFER_INCREASE = 0


@dataclass
class CellDelta:
    """Result delta of one cell present in both stores."""

    cell_id: str
    fingerprint: str
    old_yield: float
    new_yield: float
    old_buffers: int
    new_buffers: int
    old_target_period: float
    new_target_period: float
    old_mu_period: float
    new_mu_period: float

    @property
    def yield_delta_points(self) -> float:
        """Tuned-yield change in percentage points (< 0 means worse)."""
        return 100.0 * (self.new_yield - self.old_yield)

    @property
    def buffer_delta(self) -> int:
        """Buffer-count change (> 0 means more tuning area)."""
        return self.new_buffers - self.old_buffers

    @property
    def mu_period_delta(self) -> float:
        return self.new_mu_period - self.old_mu_period

    def as_dict(self) -> Dict[str, object]:
        return {
            "cell_id": self.cell_id,
            "fingerprint": self.fingerprint,
            "old_yield": self.old_yield,
            "new_yield": self.new_yield,
            "yield_delta_points": self.yield_delta_points,
            "old_buffers": self.old_buffers,
            "new_buffers": self.new_buffers,
            "buffer_delta": self.buffer_delta,
            "old_target_period": self.old_target_period,
            "new_target_period": self.new_target_period,
            "old_mu_period": self.old_mu_period,
            "new_mu_period": self.new_mu_period,
            "mu_period_delta": self.mu_period_delta,
        }


@dataclass
class CampaignComparison:
    """Join of two campaign stores on cell fingerprint."""

    old_label: str
    new_label: str
    deltas: List[CellDelta] = field(default_factory=list)
    missing_in_new: List[str] = field(default_factory=list)
    only_in_new: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "old": self.old_label,
            "new": self.new_label,
            "cells": [delta.as_dict() for delta in self.deltas],
            "missing_in_new": list(self.missing_in_new),
            "only_in_new": list(self.only_in_new),
        }


def compare_stores(old: CampaignStore, new: CampaignStore) -> CampaignComparison:
    """Join two stores on cell fingerprint and compute per-cell deltas.

    Cells appear in the old store's deterministic record order; cells
    only in the new store are listed (in the new store's order) but
    carry no delta.
    """
    new_records = new.load()
    comparison = CampaignComparison(old_label=old.path, new_label=new.path)
    old_fingerprints = set()
    for record in old.records_in_order():
        fingerprint = str(record["fingerprint"])
        old_fingerprints.add(fingerprint)
        cell = CampaignCell.from_dict(dict(record["cell"]))
        other = new_records.get(fingerprint)
        if other is None:
            comparison.missing_in_new.append(cell.cell_id)
            continue
        old_row = record_row(cell, record)
        new_row = record_row(cell, other)
        comparison.deltas.append(
            CellDelta(
                cell_id=cell.cell_id,
                fingerprint=fingerprint,
                old_yield=float(old_row["improved_yield"]),
                new_yield=float(new_row["improved_yield"]),
                old_buffers=int(old_row["n_buffers"]),
                new_buffers=int(new_row["n_buffers"]),
                old_target_period=float(old_row["target_period"]),
                new_target_period=float(new_row["target_period"]),
                old_mu_period=float(old_row["mu_period"]),
                new_mu_period=float(new_row["mu_period"]),
            )
        )
    # Computed from the already-loaded mapping (not records_in_order, which
    # would re-read the file) and sorted into the same deterministic order.
    only_in_new = [
        (CampaignCell.from_dict(dict(record["cell"])), str(record["fingerprint"]))
        for record in new_records.values()
        if str(record["fingerprint"]) not in old_fingerprints
    ]
    only_in_new.sort(key=lambda pair: (pair[0].sort_key(), pair[1]))
    comparison.only_in_new = [cell.cell_id for cell, _ in only_in_new]
    return comparison


@dataclass
class CampaignGateResult:
    """Verdict of the campaign quality gate."""

    passed: bool
    max_yield_drop: float
    max_buffer_increase: int
    failures: List[str] = field(default_factory=list)
    comparison: Optional[CampaignComparison] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "max_yield_drop": self.max_yield_drop,
            "max_buffer_increase": self.max_buffer_increase,
            "failures": list(self.failures),
            "comparison": self.comparison.as_dict() if self.comparison else None,
        }


def gate_comparison(
    comparison: CampaignComparison,
    max_yield_drop: float = DEFAULT_MAX_YIELD_DROP,
    max_buffer_increase: int = DEFAULT_MAX_BUFFER_INCREASE,
) -> CampaignGateResult:
    """Fail when any shared cell regressed beyond the thresholds.

    Thresholds are inclusive ("no worse than" passes), matching the
    bench gate's convention.
    """
    if max_yield_drop < 0.0:
        raise ValueError(f"max_yield_drop must be >= 0, got {max_yield_drop}")
    if max_buffer_increase < 0:
        raise ValueError(
            f"max_buffer_increase must be >= 0, got {max_buffer_increase}"
        )
    failures: List[str] = []
    for cell_id in comparison.missing_in_new:
        failures.append(f"{cell_id}: present in old store but missing from new")
    for delta in comparison.deltas:
        drop = -delta.yield_delta_points
        if drop > max_yield_drop:
            failures.append(
                f"{delta.cell_id}: yield {100 * delta.new_yield:.2f} % vs "
                f"{100 * delta.old_yield:.2f} % "
                f"({drop:.2f} points > {max_yield_drop:.2f} allowed)"
            )
        if delta.buffer_delta > max_buffer_increase:
            failures.append(
                f"{delta.cell_id}: buffers {delta.new_buffers} vs "
                f"{delta.old_buffers} "
                f"(+{delta.buffer_delta} > +{max_buffer_increase} allowed)"
            )
    return CampaignGateResult(
        passed=not failures,
        max_yield_drop=max_yield_drop,
        max_buffer_increase=max_buffer_increase,
        failures=failures,
        comparison=comparison,
    )


def format_campaign_comparison(comparison: CampaignComparison) -> str:
    """Human-readable per-cell delta table."""
    lines = [
        f"old : {comparison.old_label}",
        f"new : {comparison.new_label}",
        f"{'cell':<44} {'old Y%':>7} {'new Y%':>7} {'dY':>7} {'old Nb':>6} {'new Nb':>6}",
    ]
    for delta in comparison.deltas:
        lines.append(
            f"{delta.cell_id:<44} {100 * delta.old_yield:>7.2f} "
            f"{100 * delta.new_yield:>7.2f} {delta.yield_delta_points:>+7.2f} "
            f"{delta.old_buffers:>6} {delta.new_buffers:>6}"
        )
    for cell_id in comparison.missing_in_new:
        lines.append(f"{cell_id:<44} {'--':>7} {'missing':>7}")
    for cell_id in comparison.only_in_new:
        lines.append(f"{cell_id:<44} {'new':>7} {'--':>7}")
    return "\n".join(lines)


__all__ = [
    "DEFAULT_MAX_BUFFER_INCREASE",
    "DEFAULT_MAX_YIELD_DROP",
    "CampaignComparison",
    "CampaignGateResult",
    "CellDelta",
    "compare_stores",
    "format_campaign_comparison",
    "gate_comparison",
]
