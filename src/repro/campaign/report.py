"""Campaign aggregation and paper-style reporting.

Builds, from a campaign spec and its result store, the same shape of
output as the paper's Table I — one row per (circuit, target period)
cell with ``Nb``/``Ab``/``Y``/``Yi`` — plus a comparison table against
the baseline strategies (every-FF, criticality, random placement) at the
proposed flow's buffer count.

**Bit-identical by construction.**  The report is derived exclusively
from deterministic record fields (cell parameters, yields, buffer
counts); wall-clock runtimes are excluded (the Table-I ``T(s)`` column
renders ``-``) and rows follow the spec's deterministic cell order.  A
campaign that was killed and resumed therefore reports byte-for-byte the
same markdown/JSON as one that ran uninterrupted — which is exactly what
the resume tests assert.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.tables import TableOneRow, format_table_one, rows_to_markdown
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import CampaignStore, CampaignStoreError

#: Version of the report layout; bump on breaking changes.
REPORT_SCHEMA_VERSION = 1


@dataclass
class CampaignReport:
    """Deterministic aggregate of one campaign's completed cells."""

    campaign: str
    spec_fingerprint: str
    n_cells: int
    rows: List[Dict[str, object]] = field(default_factory=list)
    missing_cell_ids: List[str] = field(default_factory=list)

    @property
    def n_completed(self) -> int:
        return len(self.rows)

    @property
    def complete(self) -> bool:
        return not self.missing_cell_ids

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "campaign": self.campaign,
            "spec_fingerprint": self.spec_fingerprint,
            "n_cells": self.n_cells,
            "n_completed": self.n_completed,
            "complete": self.complete,
            "missing_cell_ids": list(self.missing_cell_ids),
            "rows": [dict(row) for row in self.rows],
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys — the bit-identity reference form)."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    # ------------------------------------------------------------------
    def table_rows(self) -> List[TableOneRow]:
        """The proposed flow's rows in :mod:`repro.analysis.tables` form."""
        return [
            TableOneRow(
                circuit=str(row["circuit"]),
                n_flip_flops=int(row["n_flip_flops"]),
                n_gates=int(row["n_gates"]),
                target_sigma=float(row["sigma"]),
                n_buffers=int(row["n_buffers"]),
                avg_range=float(row["average_range_steps"]),
                tuned_yield=float(row["improved_yield"]),
                original_yield=float(row["original_yield"]),
                runtime_s=None,
            )
            for row in self.rows
        ]


def record_row(cell: CampaignCell, record: Dict[str, object]) -> Dict[str, object]:
    """Flatten one store record into the report's deterministic row form.

    Shared with :mod:`repro.campaign.compare` so the report and the
    store-diff gate can never drift on how result fields are extracted.
    A result payload missing an expected field raises
    :class:`~repro.campaign.store.CampaignStoreError` (the CLI's exit-2
    artifact-error path), never a bare ``KeyError``.
    """
    result = dict(record["result"])
    try:
        return _record_row(cell, result)
    except KeyError as error:
        raise CampaignStoreError(
            f"store record for cell {cell.cell_id!r} is missing result "
            f"field {error.args[0]!r}"
        ) from None


def _record_row(cell: CampaignCell, result: Dict[str, object]) -> Dict[str, object]:
    return {
        "cell_id": cell.cell_id,
        "fingerprint": cell.fingerprint(),
        "circuit": cell.circuit,
        "scale": cell.scale,
        "sigma": cell.sigma,
        "solver": cell.solver,
        "n_samples": cell.n_samples,
        "n_eval_samples": cell.n_eval_samples,
        "replicate": cell.replicate,
        "seed": cell.seed,
        "n_flip_flops": int(result["n_flip_flops"]),
        "n_gates": int(result["n_gates"]),
        "target_period": float(result["target_period"]),
        "mu_period": float(result["mu_period"]),
        "sigma_period": float(result["sigma_period"]),
        "n_buffers": int(result["n_buffers"]),
        "n_physical_buffers": int(result["n_physical_buffers"]),
        "average_range_steps": float(result["average_range_steps"]),
        "original_yield": float(result["original_yield"]),
        "improved_yield": float(result["improved_yield"]),
        "yield_improvement": float(result["yield_improvement"]),
        "baselines": {
            name: dict(values)
            for name, values in dict(result.get("baselines", {})).items()
        },
    }


def build_report(spec: CampaignSpec, store: CampaignStore) -> CampaignReport:
    """Aggregate the store's records over the spec's cell matrix.

    Rows appear in the spec's deterministic cell order; cells without a
    record are listed in ``missing_cell_ids`` (an interrupted campaign
    still reports everything it finished).
    """
    records = store.load()
    rows: List[Dict[str, object]] = []
    missing: List[str] = []
    cells = spec.cells()
    for cell in cells:
        record = records.get(cell.fingerprint())
        if record is None:
            missing.append(cell.cell_id)
            continue
        rows.append(record_row(cell, record))
    return CampaignReport(
        campaign=spec.name,
        spec_fingerprint=spec.fingerprint(),
        n_cells=len(cells),
        rows=rows,
        missing_cell_ids=missing,
    )


# ----------------------------------------------------------------------
# Formatters
# ----------------------------------------------------------------------
def _baseline_names(report: CampaignReport) -> List[str]:
    """Baseline strategies present in any row, in first-seen order."""
    names: List[str] = []
    for row in report.rows:
        for name in row.get("baselines", {}):
            if name not in names:
                names.append(name)
    return names


def _comparison_header(names: List[str]) -> List[str]:
    columns = ["cell", "Yo (%)", "proposed Y (%)"]
    columns += [f"{name} Y (%)" for name in names]
    return columns


def _comparison_rows(report: CampaignReport, names: List[str]) -> List[List[str]]:
    rows = []
    for row in report.rows:
        cells = [
            str(row["cell_id"]),
            f"{100 * float(row['original_yield']):.2f}",
            f"{100 * float(row['improved_yield']):.2f} (Nb {row['n_buffers']})",
        ]
        for name in names:
            values = row.get("baselines", {}).get(name)
            if values is None:
                cells.append("-")
            else:
                cells.append(
                    f"{100 * float(values['tuned_yield']):.2f} (Nb {values['n_buffers']})"
                )
        rows.append(cells)
    return rows


def _completion_line(report: CampaignReport) -> str:
    if report.complete:
        return f"complete: {report.n_completed}/{report.n_cells} cells"
    return (
        f"incomplete: {report.n_completed}/{report.n_cells} cells "
        f"(missing: {', '.join(report.missing_cell_ids)})"
    )


def format_report_markdown(report: CampaignReport) -> str:
    """Render the report as markdown (table-one + baseline comparison)."""
    lines = [
        f"# Campaign `{report.campaign}`",
        "",
        f"- spec fingerprint: `{report.spec_fingerprint}`",
        f"- {_completion_line(report)}",
        "",
        "## Proposed flow (paper Table-I layout)",
        "",
        rows_to_markdown(report.table_rows()),
    ]
    names = _baseline_names(report)
    if names:
        header = _comparison_header(names)
        lines += [
            "",
            "## Yield vs. baselines (equal buffer count)",
            "",
            "| " + " | ".join(header) + " |",
            "|" + "---|" * len(header),
        ]
        for row in _comparison_rows(report, names):
            lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines) + "\n"


def format_report_text(report: CampaignReport) -> str:
    """Render the report as plain text (the CLI's default)."""
    lines = [
        f"campaign  : {report.campaign}",
        f"spec      : {report.spec_fingerprint}",
        f"cells     : {_completion_line(report)}",
        "",
        format_table_one(report.table_rows()),
    ]
    names = _baseline_names(report)
    if names:
        lines += ["", "yield vs. baselines (equal buffer count):"]
        widths: List[int] = []
        header = _comparison_header(names)
        body = _comparison_rows(report, names)
        for column in range(len(header)):
            widths.append(
                max([len(header[column])] + [len(row[column]) for row in body])
            )
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths, strict=True)).rstrip())
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)).rstrip())
    return "\n".join(lines) + "\n"


def format_report(report: CampaignReport, fmt: str = "text") -> str:
    """Format the report in one of ``markdown``/``text``/``json``."""
    if fmt == "markdown":
        return format_report_markdown(report)
    if fmt == "text":
        return format_report_text(report)
    if fmt == "json":
        return report.to_json()
    raise ValueError(f"unknown report format {fmt!r}; choose markdown, text or json")


def save_report(report: CampaignReport, path: str, fmt: str = "markdown") -> str:
    """Write the report to ``path`` in one of ``markdown``/``text``/``json``."""
    payload = format_report(report, fmt)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return path


__all__ = [
    "REPORT_SCHEMA_VERSION",
    "CampaignReport",
    "build_report",
    "format_report",
    "format_report_markdown",
    "format_report_text",
    "record_row",
    "save_report",
]
