"""Declarative campaign specifications.

A :class:`CampaignSpec` describes a paper-style experiment matrix —
circuits x scales x sigmas x solvers x sample budgets x replicates —
and expands it **deterministically** into :class:`CampaignCell` value
objects.  Determinism is the load-bearing property of the whole
subsystem:

* the expansion order is a stable sort over the cell parameters, so two
  processes expanding the same spec agree on cell ``0..N-1``;
* every cell carries a *derived* seed (a hash of the spec seed and the
  cell's identifying parameters), so adding or removing cells never
  shifts the seeds of the others;
* every cell has a content :meth:`~CampaignCell.fingerprint` — the
  resume key of the checkpointed result store.  The execution backend is
  deliberately **not** part of the fingerprint: flow results are
  bit-identical across executors, so a campaign may be resumed on a
  different executor and still skip completed cells.

:func:`shard_cells` partitions the expanded cell list round-robin for
multi-job CI runs; shards are disjoint and their union is the full list.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from itertools import product
from typing import Collection, Dict, List, Optional, Sequence, Tuple

from repro.baselines.harness import BASELINE_CHOICES
from repro.core.config import FlowConfig

#: Fields that identify one campaign cell (serialisation order).
CELL_FIELDS = (
    "circuit",
    "scale",
    "sigma",
    "solver",
    "n_samples",
    "n_eval_samples",
    "replicate",
    "seed",
    "design_seed",
    "baselines",
)


class CampaignError(ValueError):
    """A campaign spec, store or run request is invalid."""


def _derive_seed(master_seed: int, *parts: object) -> int:
    """Stable per-cell seed: hash of the spec seed and the cell identity.

    Content-derived (not positional), so editing the matrix never
    reshuffles the seeds of unrelated cells.
    """
    text = "|".join([str(int(master_seed))] + [repr(p) for p in parts])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % (2**31 - 1)


def _fingerprint_payload(payload: Dict[str, object]) -> str:
    """Canonical content hash of a JSON-serialisable mapping."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CampaignCell:
    """One cell of the campaign matrix (everything that affects its result).

    Attributes
    ----------
    circuit / scale:
        The Table-I circuit and its size scale.
    sigma:
        Target period expressed as ``mu_T + sigma * sigma_T``.
    solver:
        Per-sample solver backend (``graph`` or ``milp``).
    n_samples / n_eval_samples:
        Training and evaluation sample budgets.
    replicate:
        Replicate index (same matrix point, independent sampling seed).
    seed:
        Derived flow seed (training/evaluation sampling, solver
        tie-breaking) — see :func:`_derive_seed`.
    design_seed:
        Seed of the synthesised circuit instance.  Constant across all
        cells of one (circuit, scale) by default, so their compiled
        constraint systems share one content fingerprint and the
        engine's warm worker pools survive from cell to cell.
    baselines:
        Comparison strategies evaluated next to the proposed flow.
    """

    circuit: str
    scale: float
    sigma: float = 0.0
    solver: str = "graph"
    n_samples: int = 60
    n_eval_samples: int = 100
    replicate: int = 0
    seed: int = 0
    design_seed: int = 1
    baselines: Tuple[str, ...] = ()

    @property
    def cell_id(self) -> str:
        """Human-readable stable identifier."""
        return (
            f"{self.circuit}@{self.scale:g}"
            f"/sigma{self.sigma:g}"
            f"/{self.solver}"
            f"/n{self.n_samples}e{self.n_eval_samples}"
            f"/r{self.replicate}"
        )

    def sort_key(self) -> Tuple:
        """Deterministic expansion order of the campaign matrix."""
        return (
            self.circuit,
            self.scale,
            self.sigma,
            self.solver,
            self.n_samples,
            self.n_eval_samples,
            self.replicate,
        )

    def fingerprint(self) -> str:
        """Content hash over every result-affecting parameter.

        This is the resume key of the campaign store: a record whose
        fingerprint matches is skipped bit-identically on re-runs.
        """
        return _fingerprint_payload(self.as_dict())

    def flow_config(self) -> FlowConfig:
        """The :class:`FlowConfig` this cell runs (executor set at run time)."""
        return FlowConfig(
            n_samples=self.n_samples,
            n_eval_samples=self.n_eval_samples,
            seed=self.seed,
            target_sigma=self.sigma,
            solver=self.solver,
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable parameter mapping (see :data:`CELL_FIELDS`)."""
        data = {name: getattr(self, name) for name in CELL_FIELDS}
        data["baselines"] = list(self.baselines)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignCell":
        """Inverse of :meth:`as_dict` (unknown keys are rejected)."""
        unknown = set(data) - set(CELL_FIELDS)
        if unknown:
            raise CampaignError(f"unknown cell parameters: {sorted(unknown)}")
        params = dict(data)
        params["baselines"] = tuple(params.get("baselines", ()))
        return cls(**params)  # type: ignore[arg-type]


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative multi-circuit experiment campaign.

    The matrix is the cross product ``circuits x sigmas x solvers x
    budgets x replicates``; :meth:`cells` expands it deterministically
    (see the module docstring for why that matters).

    Attributes
    ----------
    name:
        Campaign name (also names the default store file).
    seed:
        Master seed all per-cell seeds derive from.
    circuits:
        ``(name, scale)`` pairs of the Table-I suite.
    sigmas:
        Target tightnesses (paper: 0, 1, 2).
    solvers:
        Per-sample solver backends.
    budgets:
        ``(n_samples, n_eval_samples)`` pairs.
    replicates:
        Independent repetitions of every matrix point.
    baselines:
        Comparison strategies run next to the proposed flow (any of
        :data:`repro.baselines.harness.BASELINE_CHOICES`).
    design_seed:
        Circuit-synthesis seed (``None``: use ``seed``); constant across
        the campaign so warm solver state is shared between cells.
    """

    name: str
    circuits: Tuple[Tuple[str, float], ...]
    seed: int = 1
    sigmas: Tuple[float, ...] = (0.0,)
    solvers: Tuple[str, ...] = ("graph",)
    budgets: Tuple[Tuple[int, int], ...] = ((60, 100),)
    replicates: int = 1
    baselines: Tuple[str, ...] = ("every_ff", "criticality", "random")
    design_seed: Optional[int] = None

    def __post_init__(self) -> None:
        from repro.circuit.suite import CIRCUIT_SPECS

        if not self.name:
            raise CampaignError("campaign name must be non-empty")
        if not self.circuits:
            raise CampaignError("campaign needs at least one circuit")
        for entry in self.circuits:
            if len(entry) != 2:
                raise CampaignError(f"circuits entries must be (name, scale) pairs, got {entry!r}")
            circuit, scale = entry
            if circuit not in CIRCUIT_SPECS:
                raise CampaignError(
                    f"unknown circuit {circuit!r}; choose from {tuple(CIRCUIT_SPECS)}"
                )
            if not (0.0 < float(scale) <= 1.0):
                raise CampaignError(f"circuit scale must be in (0, 1], got {scale!r}")
        if not self.sigmas:
            raise CampaignError("campaign needs at least one sigma")
        for solver in self.solvers or ():
            if solver not in ("graph", "milp"):
                raise CampaignError(f"unknown solver {solver!r}; choose from ('graph', 'milp')")
        if not self.solvers:
            raise CampaignError("campaign needs at least one solver")
        if not self.budgets:
            raise CampaignError("campaign needs at least one sample budget")
        for budget in self.budgets:
            if len(budget) != 2 or int(budget[0]) < 1 or int(budget[1]) < 1:
                raise CampaignError(
                    f"budgets entries must be (n_samples, n_eval_samples) pairs of "
                    f"positive integers, got {budget!r}"
                )
        if self.replicates < 1:
            raise CampaignError(f"replicates must be >= 1, got {self.replicates}")
        for baseline in self.baselines:
            if baseline not in BASELINE_CHOICES:
                raise CampaignError(
                    f"unknown baseline {baseline!r}; choose from {BASELINE_CHOICES}"
                )

    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        """Size of the expanded matrix."""
        return (
            len(self.circuits)
            * len(self.sigmas)
            * len(self.solvers)
            * len(self.budgets)
            * self.replicates
        )

    def cells(self) -> List[CampaignCell]:
        """Expand the matrix into deterministically ordered cells."""
        design_seed = self.seed if self.design_seed is None else self.design_seed
        cells = []
        for (circuit, scale), sigma, solver, (n_samples, n_eval), replicate in product(
            self.circuits,
            self.sigmas,
            self.solvers,
            self.budgets,
            range(self.replicates),
        ):
            cells.append(
                CampaignCell(
                    circuit=circuit,
                    scale=float(scale),
                    sigma=float(sigma),
                    solver=solver,
                    n_samples=int(n_samples),
                    n_eval_samples=int(n_eval),
                    replicate=replicate,
                    seed=_derive_seed(
                        self.seed,
                        circuit,
                        float(scale),
                        float(sigma),
                        solver,
                        int(n_samples),
                        int(n_eval),
                        replicate,
                    ),
                    design_seed=int(design_seed),
                    baselines=tuple(self.baselines),
                )
            )
        cells.sort(key=CampaignCell.sort_key)
        seen = set()
        for cell in cells:
            if cell.fingerprint() in seen:
                raise CampaignError(f"duplicate campaign cell {cell.cell_id!r}")
            seen.add(cell.fingerprint())
        return cells

    def cells_by_fingerprint(self) -> Dict[str, CampaignCell]:
        """Expanded cells keyed by their content fingerprint.

        The lookup form the store, pool and status layers all join on —
        a spec *is* a view over content-addressed cells.
        """
        return {cell.fingerprint(): cell for cell in self.cells()}

    def fingerprint(self) -> str:
        """Content hash of the whole spec (recorded in reports)."""
        return _fingerprint_payload(self.as_dict())

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "seed": int(self.seed),
            "circuits": [[circuit, float(scale)] for circuit, scale in self.circuits],
            "sigmas": [float(s) for s in self.sigmas],
            "solvers": list(self.solvers),
            "budgets": [[int(n), int(e)] for n, e in self.budgets],
            "replicates": int(self.replicates),
            "baselines": list(self.baselines),
            "design_seed": self.design_seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        """Build a spec from a plain mapping (a parsed JSON spec file)."""
        if not isinstance(data, dict):
            raise CampaignError("campaign spec must be a JSON object")
        known = {
            "name",
            "seed",
            "circuits",
            "sigmas",
            "solvers",
            "budgets",
            "replicates",
            "baselines",
            "design_seed",
        }
        unknown = set(data) - known
        if unknown:
            raise CampaignError(f"unknown campaign spec fields: {sorted(unknown)}")
        if "name" not in data or "circuits" not in data:
            raise CampaignError("campaign spec needs at least 'name' and 'circuits'")
        try:
            circuits = tuple((str(c), float(s)) for c, s in data["circuits"])
            budgets = tuple(
                (int(n), int(e)) for n, e in data.get("budgets", [[60, 100]])
            )
        except (TypeError, ValueError) as error:
            raise CampaignError(f"malformed campaign spec: {error}") from None
        return cls(
            name=str(data["name"]),
            seed=int(data.get("seed", 1)),
            circuits=circuits,
            sigmas=tuple(float(s) for s in data.get("sigmas", [0.0])),
            solvers=tuple(str(s) for s in data.get("solvers", ["graph"])),
            budgets=budgets,
            replicates=int(data.get("replicates", 1)),
            baselines=tuple(str(b) for b in data.get("baselines", list(BASELINE_CHOICES))),
            design_seed=(
                None if data.get("design_seed") is None else int(data["design_seed"])
            ),
        )


def load_spec(path: str) -> CampaignSpec:
    """Load a campaign spec from a JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise CampaignError(f"cannot read campaign spec {path!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise CampaignError(f"campaign spec {path!r} is not valid JSON: {error}") from error
    return CampaignSpec.from_dict(data)


def shard_cells(
    cells: Sequence[CampaignCell],
    shard_index: int = 0,
    shard_count: int = 1,
    pooled_fingerprints: Optional[Collection[str]] = None,
) -> List[CampaignCell]:
    """Round-robin partition of the expanded cell list for multi-job runs.

    Shards are disjoint and their union over ``0..shard_count-1`` is the
    full list; the round-robin interleaving balances circuits across
    shards even when the matrix is sorted by circuit.

    ``pooled_fingerprints`` makes the partition pool-aware: cells whose
    results are already in the shared result pool cost a shard only a
    cheap record materialisation, not a flow run, so counting them in
    one round-robin with the real work skews shards by whole flow runs.
    With the pre-pass, the cells *missing* from the pool are
    round-robined first (every shard gets an equal share of actual
    work) and the pooled cells are round-robined separately.  Each
    shard's cells keep their deterministic expansion order, and the
    disjoint/union invariant holds as long as every shard job is handed
    the same pool snapshot (hand concurrent CI jobs one downloaded pool
    artifact, not a live store another job is appending to).

    Shards partitioned from *different* snapshots of a growing pool may
    leave a cell unclaimed for one pass (its rank among the missing
    cells shifted between snapshots).  The gap is visible in
    ``campaign status`` / ``report`` completeness and closes on re-run:
    once the stragglers are the only missing cells, some shard claims
    each of them.
    """
    if shard_count < 1:
        raise CampaignError(f"shard_count must be >= 1, got {shard_count}")
    if not (0 <= shard_index < shard_count):
        raise CampaignError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}"
        )
    if not pooled_fingerprints:
        return [cell for i, cell in enumerate(cells) if i % shard_count == shard_index]
    pooled = frozenset(pooled_fingerprints)
    missing = [i for i, cell in enumerate(cells) if cell.fingerprint() not in pooled]
    hits = [i for i, cell in enumerate(cells) if cell.fingerprint() in pooled]
    chosen = {
        index
        for subset in (missing, hits)
        for position, index in enumerate(subset)
        if position % shard_count == shard_index
    }
    return [cell for i, cell in enumerate(cells) if i in chosen]


# ----------------------------------------------------------------------
# Named built-in campaigns
# ----------------------------------------------------------------------
def _smoke_spec() -> CampaignSpec:
    # Small enough for a CI smoke leg (seconds end to end) while still
    # exercising two tightnesses, two budgets and all three baselines.
    return CampaignSpec(
        name="smoke",
        seed=3,
        circuits=(("s9234", 0.05),),
        sigmas=(0.0, 1.0),
        budgets=((40, 80), (60, 100)),
    )


def _nightly_spec() -> CampaignSpec:
    # The nightly trajectory matrix: two circuits, the paper's three
    # tightnesses and two budgets (12 cells).
    return CampaignSpec(
        name="nightly",
        seed=3,
        circuits=(("s9234", 0.05), ("s13207", 0.05)),
        sigmas=(0.0, 1.0, 2.0),
        budgets=((60, 100), (120, 200)),
    )


def _table1_spec() -> CampaignSpec:
    # A paper-style Table-I reproduction at moderate scale: one cell per
    # (circuit, target period) like the paper's table.
    return CampaignSpec(
        name="table1",
        seed=1,
        circuits=(("s9234", 0.15), ("s13207", 0.1)),
        sigmas=(0.0, 1.0, 2.0),
        budgets=((300, 600),),
    )


_SPEC_BUILDERS = {
    "smoke": _smoke_spec,
    "nightly": _nightly_spec,
    "table1": _table1_spec,
}

SPEC_NAMES = tuple(sorted(_SPEC_BUILDERS))


def get_spec(name: str) -> CampaignSpec:
    """A named built-in campaign spec."""
    try:
        builder = _SPEC_BUILDERS[name]
    except KeyError:
        raise CampaignError(
            f"unknown campaign {name!r}; choose from {SPEC_NAMES}"
        ) from None
    return builder()


__all__ = [
    "CELL_FIELDS",
    "CampaignCell",
    "CampaignError",
    "CampaignSpec",
    "SPEC_NAMES",
    "get_spec",
    "load_spec",
    "shard_cells",
]
