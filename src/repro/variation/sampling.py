"""Monte-Carlo sampling of the shared variation sources.

A :class:`SampleBatch` holds one matrix of standard-normal draws for the
shared variables of a :class:`~repro.variation.model.VariationModel`; every
"sample" column represents one manufactured chip.  Canonical forms are
evaluated against the batch with a single matrix multiplication, which is
what keeps the sampling-based buffer-insertion flow tractable in pure
Python/numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.backend import active_backend
from repro.utils.rng import RngLike, ensure_rng
from repro.variation.arrayforms import ArrayForms
from repro.variation.canonical import CanonicalForm
from repro.variation.model import VariationModel


@dataclass
class SampleBatch:
    """Standard-normal draws of the shared variation sources.

    Attributes
    ----------
    shared:
        Array of shape ``(n_shared_sources, n_samples)``.
    seed_sequence:
        The integer seed the batch was drawn from (for provenance).
    """

    shared: np.ndarray
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.shared = np.asarray(self.shared, dtype=float)
        if self.shared.ndim != 2:
            raise ValueError("shared samples must be a 2-D array")

    @property
    def n_sources(self) -> int:
        """Number of shared sources."""
        return int(self.shared.shape[0])

    @property
    def n_samples(self) -> int:
        """Number of Monte-Carlo samples (chips)."""
        return int(self.shared.shape[1])

    def subset(self, indices: Sequence[int]) -> "SampleBatch":
        """Return a batch restricted to the given sample indices."""
        indices = np.asarray(indices, dtype=int)
        return SampleBatch(self.shared[:, indices], seed=self.seed)


class MonteCarloSampler:
    """Draw chip samples and evaluate canonical forms against them.

    Parameters
    ----------
    model:
        The circuit's variation model (defines the shared-variable space).
    rng:
        Seed or generator; all draws are reproducible given the seed.
    """

    def __init__(self, model: VariationModel, rng: RngLike = None) -> None:
        self.model = model
        self._rng = ensure_rng(rng)

    def sample(self, n_samples: int) -> SampleBatch:
        """Draw ``n_samples`` chips worth of shared-source values."""
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        shared = self._rng.standard_normal((self.model.n_shared_sources, n_samples))
        return SampleBatch(shared)

    def evaluate(
        self,
        forms: Sequence[CanonicalForm],
        batch: SampleBatch,
        include_independent: bool = True,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Evaluate canonical forms for each sample of a batch.

        Parameters
        ----------
        forms:
            Sequence of ``n_forms`` canonical forms over the model's shared
            sources.
        batch:
            The sample batch to evaluate against.
        include_independent:
            When ``True`` (default) each form additionally receives its own
            independent standard-normal draw per sample.
        rng:
            Generator for the independent draws; defaults to the sampler's
            own stream.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(n_forms, n_samples)``.
        """
        forms = list(forms)
        if not forms:
            if batch.n_sources != self.model.n_shared_sources:
                raise ValueError(
                    "sample batch does not match the variation model "
                    f"({batch.n_sources} vs {self.model.n_shared_sources} sources)"
                )
            return np.zeros((0, batch.n_samples))
        stacked = ArrayForms.from_forms(forms, n_sources=self.model.n_shared_sources)
        return self.evaluate_array(stacked, batch, include_independent, rng)

    def evaluate_array(
        self,
        forms: ArrayForms,
        batch: SampleBatch,
        include_independent: bool = True,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Evaluate a pre-stacked :class:`ArrayForms` matrix for a batch.

        The compiled fast path: no per-call stacking, one matrix
        multiplication for all forms and samples.  Consumes the sampler's
        random stream exactly like :meth:`evaluate` (one standard-normal
        matrix per call when any form has a non-zero independent term),
        so the two entry points are interchangeable bit for bit.
        """
        if batch.n_sources != self.model.n_shared_sources:
            raise ValueError(
                "sample batch does not match the variation model "
                f"({batch.n_sources} vs {self.model.n_shared_sources} sources)"
            )
        if forms.n_sources != self.model.n_shared_sources:
            raise ValueError(
                "forms do not match the variation model "
                f"({forms.n_sources} vs {self.model.n_shared_sources} sources)"
            )
        n_forms = forms.n_forms
        n_samples = batch.n_samples
        if n_forms == 0:
            return np.zeros((0, n_samples))
        xp = active_backend()
        stack = forms.to_backend(xp)
        values = stack.means[..., None] + stack.sensitivities @ xp.asarray(batch.shared)
        if include_independent and xp.any(stack.independent != 0.0):
            generator = ensure_rng(rng) if rng is not None else self._rng
            noise = generator.standard_normal((n_forms, n_samples))
            values = values + stack.independent[..., None] * xp.asarray(noise)
        return xp.to_numpy(values)
