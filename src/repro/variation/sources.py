"""Physical process-variation sources.

The experimental setup of the paper (Sec. IV) fixes the standard deviations
of transistor length, oxide thickness and threshold voltage to 15.7 %,
5.3 % and 4.4 % of their nominal values.  A physical parameter deviation
does not translate one-to-one into a delay deviation; the translation
factor (the *delay sensitivity*) is a property of the cell library.  The
default sensitivities below are chosen so that the resulting per-gate delay
sigma is in the usual 8–15 % range reported for submicron libraries.

Each source's variance is split into three statistical components:

* a **global** (chip-to-chip / die-to-die) component shared by every gate,
* a **spatial** (within-die, regionally correlated) component shared by all
  gates placed in the same region of a rectangular grid,
* an **independent** (purely random, gate-to-gate) component.

This mirrors the decomposition the canonical delay model of reference [3]
is built for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.utils.validation import check_fraction, check_non_negative


@dataclass(frozen=True)
class VarianceSplit:
    """Fractions of a source's variance assigned to each correlation level.

    The three fractions must sum to 1 (within numerical tolerance).
    """

    global_frac: float = 0.4
    spatial_frac: float = 0.4
    independent_frac: float = 0.2

    def __post_init__(self) -> None:
        for name in ("global_frac", "spatial_frac", "independent_frac"):
            check_non_negative(getattr(self, name), name)
        total = self.global_frac + self.spatial_frac + self.independent_frac
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"variance split fractions must sum to 1, got {total}"
            )

    def as_tuple(self) -> Tuple[float, float, float]:
        """Return ``(global, spatial, independent)`` fractions."""
        return (self.global_frac, self.spatial_frac, self.independent_frac)


@dataclass(frozen=True)
class VariationSource:
    """One physical variation source (e.g. transistor length).

    Parameters
    ----------
    name:
        Identifier, e.g. ``"length"``.
    sigma_fraction:
        Standard deviation of the physical parameter as a fraction of its
        nominal value (paper Sec. IV: 0.157 for length).
    delay_sensitivity:
        Relative delay change per relative parameter change
        (``d(delay)/delay`` divided by ``d(param)/param``).  The product
        ``sigma_fraction * delay_sensitivity`` is the delay sigma fraction
        contributed by this source.
    split:
        How the source's variance is divided into global, spatial and
        independent components.
    """

    name: str
    sigma_fraction: float
    delay_sensitivity: float = 1.0
    split: VarianceSplit = VarianceSplit()

    def __post_init__(self) -> None:
        check_fraction(self.sigma_fraction, "sigma_fraction")
        check_non_negative(self.delay_sensitivity, "delay_sensitivity")

    @property
    def delay_sigma_fraction(self) -> float:
        """Delay standard deviation (fraction of nominal delay) this source
        contributes to a nominal-sensitivity gate."""
        return self.sigma_fraction * self.delay_sensitivity


#: The three sources used in the paper's experiments.  Sensitivities are
#: library-dependent; the chosen values give a combined per-gate delay sigma
#: of roughly 11 % of nominal, in line with submicron technology reports.
DEFAULT_SOURCES: Tuple[VariationSource, ...] = (
    VariationSource("length", sigma_fraction=0.157, delay_sensitivity=0.55),
    VariationSource("oxide_thickness", sigma_fraction=0.053, delay_sensitivity=0.60),
    VariationSource("threshold_voltage", sigma_fraction=0.044, delay_sensitivity=0.90),
)


def combined_delay_sigma_fraction(
    sources: Sequence[VariationSource] = DEFAULT_SOURCES,
) -> float:
    """Root-sum-square delay sigma fraction of several independent sources."""
    total = 0.0
    for src in sources:
        total += src.delay_sigma_fraction**2
    return total**0.5
