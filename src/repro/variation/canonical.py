"""First-order canonical delay form (paper reference [3]).

A statistical timing quantity is represented as

    d = a0 + sum_i a_i * dX_i + a_r * dR

where ``dX_i`` are shared standard-normal variation sources (global and
spatially correlated components of the physical parameters) and ``dR`` is a
standard-normal variable independent of everything else (the purely random,
per-gate component).  All sensitivities are stored in delay units.

The class supports the operations needed by a block-based statistical
timing engine:

* addition / subtraction of forms and constants,
* scaling,
* the statistical maximum and minimum of two forms using Clark's
  moment-matching approximation,
* evaluation against a matrix of sampled source values (Monte Carlo).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Union

import numpy as np

Number = Union[int, float]

#: Standard-normal pdf / cdf helpers (avoid a scipy dependency in the hot path).
_SQRT2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


def _phi(x: float) -> float:
    """Standard normal probability density function."""
    return _INV_SQRT_2PI * math.exp(-0.5 * x * x)


def _Phi(x: float) -> float:
    """Standard normal cumulative distribution function."""
    return 0.5 * (1.0 + math.erf(x / _SQRT2))


@dataclass
class CanonicalForm:
    """First-order canonical form ``a0 + a·dX + a_r·dR``.

    Parameters
    ----------
    mean:
        Nominal value ``a0``.
    sensitivities:
        Length-``n_sources`` vector of sensitivities to the shared sources.
    independent:
        Sensitivity (standard deviation) of the purely independent term.
    """

    mean: float
    sensitivities: np.ndarray
    independent: float = 0.0

    def __post_init__(self) -> None:
        self.sensitivities = np.asarray(self.sensitivities, dtype=float)
        if self.sensitivities.ndim != 1:
            raise ValueError("sensitivities must be a 1-D vector")
        self.mean = float(self.mean)
        self.independent = float(self.independent)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, value: float, n_sources: int) -> "CanonicalForm":
        """A deterministic value expressed as a canonical form."""
        return cls(value, np.zeros(n_sources), 0.0)

    @classmethod
    def zeros_like(cls, other: "CanonicalForm") -> "CanonicalForm":
        """A zero form with the same number of sources as ``other``."""
        return cls(0.0, np.zeros_like(other.sensitivities), 0.0)

    # ------------------------------------------------------------------
    # Moments
    # ------------------------------------------------------------------
    @property
    def n_sources(self) -> int:
        """Number of shared variation sources."""
        return int(self.sensitivities.shape[0])

    @property
    def variance(self) -> float:
        """Total variance (shared + independent)."""
        return float(np.dot(self.sensitivities, self.sensitivities) + self.independent**2)

    @property
    def std(self) -> float:
        """Total standard deviation."""
        return math.sqrt(max(self.variance, 0.0))

    def quantile(self, q: float) -> float:
        """Gaussian quantile of the form (e.g. ``q=0.9987`` for +3 sigma)."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must lie in (0, 1)")
        # Inverse CDF via binary search on Phi: adequate precision, no scipy.
        lo, hi = -10.0, 10.0
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if _Phi(mid) < q:
                lo = mid
            else:
                hi = mid
        return self.mean + self.std * 0.5 * (lo + hi)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "CanonicalForm") -> None:
        if self.n_sources != other.n_sources:
            raise ValueError(
                f"incompatible forms: {self.n_sources} vs {other.n_sources} sources"
            )

    def __add__(self, other: Union["CanonicalForm", Number]) -> "CanonicalForm":
        if isinstance(other, CanonicalForm):
            self._check_compatible(other)
            return CanonicalForm(
                self.mean + other.mean,
                self.sensitivities + other.sensitivities,
                math.hypot(self.independent, other.independent),
            )
        return CanonicalForm(self.mean + float(other), self.sensitivities.copy(), self.independent)

    __radd__ = __add__

    def __neg__(self) -> "CanonicalForm":
        return CanonicalForm(-self.mean, -self.sensitivities, self.independent)

    def __sub__(self, other: Union["CanonicalForm", Number]) -> "CanonicalForm":
        if isinstance(other, CanonicalForm):
            self._check_compatible(other)
            return CanonicalForm(
                self.mean - other.mean,
                self.sensitivities - other.sensitivities,
                math.hypot(self.independent, other.independent),
            )
        return CanonicalForm(self.mean - float(other), self.sensitivities.copy(), self.independent)

    def __rsub__(self, other: Number) -> "CanonicalForm":
        return (-self) + float(other)

    def __mul__(self, factor: Number) -> "CanonicalForm":
        factor = float(factor)
        return CanonicalForm(
            self.mean * factor, self.sensitivities * factor, abs(self.independent * factor)
        )

    __rmul__ = __mul__

    # ------------------------------------------------------------------
    # Statistical max / min (Clark's approximation)
    # ------------------------------------------------------------------
    def covariance(self, other: "CanonicalForm") -> float:
        """Covariance with another form (independent terms are uncorrelated)."""
        self._check_compatible(other)
        return float(np.dot(self.sensitivities, other.sensitivities))

    def correlation(self, other: "CanonicalForm") -> float:
        """Correlation coefficient with another form."""
        denom = self.std * other.std
        if denom <= 0.0:
            return 0.0
        return max(-1.0, min(1.0, self.covariance(other) / denom))

    def max(self, other: "CanonicalForm") -> "CanonicalForm":
        """Statistical maximum using Clark's moment-matching approximation.

        The result is re-expressed as a canonical form: shared sensitivities
        are the tightness-weighted combination of the operands' sensitivities
        and the residual variance is pushed into the independent term so that
        the first two moments match Clark's formulas.
        """
        self._check_compatible(other)
        a, b = self, other
        var_a, var_b = a.variance, b.variance
        theta2 = var_a + var_b - 2.0 * a.covariance(b)
        theta = math.sqrt(max(theta2, 0.0))
        if theta < 1e-12:
            # Perfectly correlated with equal spread: max is whichever mean is larger.
            return (a if a.mean >= b.mean else b)._copy()
        alpha = (a.mean - b.mean) / theta
        t = _Phi(alpha)        # tightness probability P(a > b)
        phi = _phi(alpha)
        mean = a.mean * t + b.mean * (1.0 - t) + theta * phi
        second_moment = (
            (var_a + a.mean**2) * t
            + (var_b + b.mean**2) * (1.0 - t)
            + (a.mean + b.mean) * theta * phi
        )
        variance = max(second_moment - mean**2, 0.0)
        sens = t * a.sensitivities + (1.0 - t) * b.sensitivities
        shared_var = float(np.dot(sens, sens))
        independent = math.sqrt(max(variance - shared_var, 0.0))
        return CanonicalForm(mean, sens, independent)

    def min(self, other: "CanonicalForm") -> "CanonicalForm":
        """Statistical minimum via ``min(a, b) = -max(-a, -b)``."""
        return -((-self).max(-other))

    def _copy(self) -> "CanonicalForm":
        return CanonicalForm(self.mean, self.sensitivities.copy(), self.independent)

    # ------------------------------------------------------------------
    # Monte-Carlo evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        source_samples: np.ndarray,
        independent_samples: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Evaluate the form for sampled source values.

        Parameters
        ----------
        source_samples:
            Array of shape ``(n_sources, n_samples)`` with standard-normal
            samples of the shared sources.
        independent_samples:
            Optional array of shape ``(n_samples,)`` with standard-normal
            samples of the independent term.  If omitted the independent
            contribution is dropped (useful when it has been merged
            elsewhere).
        """
        source_samples = np.asarray(source_samples, dtype=float)
        if source_samples.ndim != 2 or source_samples.shape[0] != self.n_sources:
            raise ValueError(
                f"source_samples must have shape ({self.n_sources}, n); "
                f"got {source_samples.shape}"
            )
        values = self.mean + self.sensitivities @ source_samples
        if independent_samples is not None and self.independent != 0.0:
            independent_samples = np.asarray(independent_samples, dtype=float)
            if independent_samples.shape[0] != source_samples.shape[1]:
                raise ValueError("independent_samples length must match n_samples")
            values = values + self.independent * independent_samples
        return values

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CanonicalForm(mean={self.mean:.4g}, std={self.std:.4g}, "
            f"n_sources={self.n_sources})"
        )


def canonical_sum(forms: Iterable[CanonicalForm], n_sources: int) -> CanonicalForm:
    """Sum an iterable of canonical forms (empty sum is a zero constant)."""
    total = CanonicalForm.constant(0.0, n_sources)
    for form in forms:
        total = total + form
    return total


def canonical_max(forms: Iterable[CanonicalForm]) -> CanonicalForm:
    """Statistical maximum of an iterable of canonical forms."""
    iterator = iter(forms)
    try:
        result = next(iterator)
    except StopIteration:
        raise ValueError("canonical_max requires at least one form") from None
    for form in iterator:
        result = result.max(form)
    return result


def canonical_min(forms: Iterable[CanonicalForm]) -> CanonicalForm:
    """Statistical minimum of an iterable of canonical forms."""
    iterator = iter(forms)
    try:
        result = next(iterator)
    except StopIteration:
        raise ValueError("canonical_min requires at least one form") from None
    for form in iterator:
        result = result.min(form)
    return result
