"""Process-variation substrate.

The paper models combinational delays, setup/hold times and buffer delays
as random variables caused by process variation in transistor length,
oxide thickness and threshold voltage.  This subpackage provides:

* :mod:`repro.variation.sources` — the physical variation sources and how
  their variance is split into globally shared, spatially correlated and
  purely independent components;
* :mod:`repro.variation.canonical` — the first-order canonical delay form
  of Visweswariah et al. (paper reference [3]) including Clark's
  max-approximation, which the statistical timing engine propagates;
* :mod:`repro.variation.arrayforms` — stacks of canonical forms as one
  coefficient matrix with vectorised arithmetic, row-wise Clark max/min
  and single-matmul batch evaluation (the compiled hot path);
* :mod:`repro.variation.model` — assembly of a per-circuit variation model
  that assigns every gate a sensitivity vector over the shared sources;
* :mod:`repro.variation.sampling` — vectorised Monte-Carlo sampling of the
  shared sources and evaluation of canonical forms per sample.
"""

from repro.variation.arrayforms import ArrayForms, clark_max_many
from repro.variation.canonical import CanonicalForm
from repro.variation.model import GateDelayModel, VariationModel
from repro.variation.sampling import MonteCarloSampler, SampleBatch
from repro.variation.sources import (
    DEFAULT_SOURCES,
    VariationSource,
    VarianceSplit,
)

__all__ = [
    "ArrayForms",
    "CanonicalForm",
    "clark_max_many",
    "GateDelayModel",
    "VariationModel",
    "MonteCarloSampler",
    "SampleBatch",
    "VariationSource",
    "VarianceSplit",
    "DEFAULT_SOURCES",
]
