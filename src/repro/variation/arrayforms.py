"""Array-native stacks of first-order canonical forms.

:class:`ArrayForms` is the compiled counterpart of
:class:`~repro.variation.canonical.CanonicalForm`: ``n_forms`` canonical
forms stored as one ``(n_forms, n_sources + 2)`` coefficient matrix

* column ``0`` — the means ``a0``,
* columns ``1 .. n_sources`` — the shared-source sensitivities,
* column ``n_sources + 1`` — the independent sigmas ``a_r`` (>= 0).

A stack may additionally carry a leading **cell axis**: coefficients of
shape ``(n_cells, n_forms, n_sources + 2)`` hold the same form layout
for ``n_cells`` campaign cells of one compiled topology, and every
operation (including Clark's max and Monte-Carlo evaluation) batches
over that axis in a single kernel invocation.  Leading dimensions are
flattened through the identical 2-D reduction, so the per-cell numbers
are bit-for-bit what a per-cell loop would produce.

Every operation of the scalar class exists in vectorised row-wise form:
addition/subtraction (independent terms combine in quadrature), scaling,
Clark's statistical max/min, and Monte-Carlo evaluation of all forms
against a sample batch with a single matrix multiplication
``means + sensitivities @ samples``.  All kernel ops are expressed
against a swappable array namespace (:mod:`repro.backend`): the numpy
backend delegates to the very functions the kernels always used (results
stay bit-identical), optional torch/cupy backends agree with the scalar
oracle to ``1e-12``.  The statistical timing engine
(:mod:`repro.timing.propagate`) sweeps whole levels of the timing graph
through these kernels instead of looping over Python objects, and the
compiled constraint system (:mod:`repro.core.compiled`) keeps the stacked
edge quantities around for batch evaluation.

``CanonicalForm`` remains the scalar view: :meth:`ArrayForms.form`
materialises one row, :meth:`ArrayForms.from_forms` stacks scalar forms.
The two paths agree to within a few ulps (the array path evaluates the
same Clark formulas elementwise); the test suite pins the agreement at
``1e-12``.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.backend import ArrayBackend, numpy_backend
from repro.variation.canonical import CanonicalForm

#: Below this spread Clark's max degenerates to picking the larger mean
#: (same constant as the scalar path in :mod:`repro.variation.canonical`).
_CLARK_DEGENERATE_TOL = 1e-12

_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)
_SQRT2 = math.sqrt(2.0)


def _phi_vec(x: np.ndarray) -> np.ndarray:
    """Standard normal pdf, elementwise (numpy-backend shorthand)."""
    return numpy_backend().phi(x)


def _Phi_vec(x: np.ndarray) -> np.ndarray:
    """Standard normal cdf, elementwise (numpy-backend shorthand)."""
    return numpy_backend().Phi(x)


class ArrayForms:
    """A stack of canonical forms as one coefficient matrix.

    Parameters
    ----------
    coeffs:
        Array of shape ``(n_forms, n_sources + 2)`` laid out as
        ``[mean | sensitivities | independent]``, or
        ``(n_cells, n_forms, n_sources + 2)`` for a cell-batched stack.
        The array is used as-is (no copy) when it already is a float64
        array of the stack's backend.
    backend:
        Array backend the stack's kernels run on (default: numpy, the
        bit-identical reference backend).
    """

    __slots__ = ("coeffs", "backend")

    def __init__(self, coeffs, backend: Optional[ArrayBackend] = None) -> None:
        xp = backend if backend is not None else numpy_backend()
        coeffs = xp.asarray(coeffs)
        if coeffs.ndim not in (2, 3) or coeffs.shape[-1] < 2:
            raise ValueError(
                "coeffs must have shape (n_forms, n_sources + 2) or "
                f"(n_cells, n_forms, n_sources + 2); got {tuple(coeffs.shape)}"
            )
        self.coeffs = coeffs
        self.backend = xp

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(
        cls,
        n_forms: int,
        n_sources: int,
        n_cells: Optional[int] = None,
        backend: Optional[ArrayBackend] = None,
    ) -> "ArrayForms":
        """``n_forms`` zero forms over ``n_sources`` shared sources."""
        xp = backend if backend is not None else numpy_backend()
        shape = (n_forms, n_sources + 2)
        if n_cells is not None:
            shape = (n_cells,) + shape
        return cls(xp.zeros(shape), backend=xp)

    @classmethod
    def constants(
        cls,
        values: Sequence[float],
        n_sources: int,
        backend: Optional[ArrayBackend] = None,
    ) -> "ArrayForms":
        """Deterministic values expressed as canonical forms."""
        values = np.asarray(values, dtype=float)
        coeffs = np.zeros((values.shape[0], n_sources + 2))
        coeffs[:, 0] = values
        return cls(coeffs, backend=backend)

    @classmethod
    def from_forms(
        cls,
        forms: Iterable[CanonicalForm],
        n_sources: Optional[int] = None,
        backend: Optional[ArrayBackend] = None,
    ) -> "ArrayForms":
        """Stack scalar :class:`CanonicalForm` objects into one matrix.

        ``n_sources`` is only needed for an empty iterable, where the
        source dimension cannot be inferred.
        """
        forms = list(forms)
        if not forms:
            if n_sources is None:
                raise ValueError("n_sources is required to stack zero forms")
            return cls.zeros(0, n_sources, backend=backend)
        width = forms[0].n_sources
        coeffs = np.empty((len(forms), width + 2))
        for row, form in enumerate(forms):
            if form.n_sources != width:
                raise ValueError(
                    f"incompatible forms: {width} vs {form.n_sources} sources"
                )
            coeffs[row, 0] = form.mean
            coeffs[row, 1:-1] = form.sensitivities
            coeffs[row, -1] = form.independent
        return cls(coeffs, backend=backend)

    @classmethod
    def stack_cells(
        cls, stacks: Sequence["ArrayForms"], backend: Optional[ArrayBackend] = None
    ) -> "ArrayForms":
        """Stack aligned per-cell matrices along a new leading cell axis.

        All stacks must be 2-D with identical shape; the result is the
        ``(n_cells, n_forms, width)`` cell batch every kernel sweeps in
        one pass.
        """
        stacks = list(stacks)
        if not stacks:
            raise ValueError("stack_cells requires at least one stack")
        xp = backend if backend is not None else stacks[0].backend
        shape = tuple(stacks[0].coeffs.shape)
        for stack in stacks:
            if stack.coeffs.ndim != 2:
                raise ValueError("stack_cells requires 2-D per-cell stacks")
            if tuple(stack.coeffs.shape) != shape:
                raise ValueError(
                    f"misaligned cell stacks: {shape} vs {tuple(stack.coeffs.shape)}"
                )
        return cls(xp.stack([xp.asarray(s.coeffs) for s in stacks]), backend=xp)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_forms(self) -> int:
        """Number of stacked forms (rows of one cell)."""
        return int(self.coeffs.shape[-2])

    @property
    def n_sources(self) -> int:
        """Number of shared variation sources."""
        return int(self.coeffs.shape[-1] - 2)

    @property
    def n_cells(self) -> Optional[int]:
        """Size of the leading cell axis (``None`` for a plain stack)."""
        return int(self.coeffs.shape[0]) if self.coeffs.ndim == 3 else None

    def __len__(self) -> int:
        return self.n_forms

    @property
    def means(self):
        """The ``a0`` terms (view into the matrix)."""
        return self.coeffs[..., 0]

    @property
    def sensitivities(self):
        """Shared sensitivities ``(..., n_forms, n_sources)`` (view)."""
        return self.coeffs[..., 1:-1]

    @property
    def independent(self):
        """Independent sigmas (view into the matrix)."""
        return self.coeffs[..., -1]

    def variances(self):
        """Total variance (shared + independent) of every form."""
        sens = self.sensitivities
        return self.backend.row_dot(sens, sens) + self.independent**2

    def stds(self):
        """Total standard deviation of every form."""
        xp = self.backend
        return xp.sqrt(xp.maximum(self.variances(), 0.0))

    def _require_2d(self, what: str) -> None:
        if self.coeffs.ndim != 2:
            raise ValueError(
                f"{what} requires a plain 2-D stack; select one cell first "
                "(ArrayForms.cell)"
            )

    def cell(self, index: int) -> "ArrayForms":
        """The plain 2-D stack of one cell of a cell-batched stack."""
        if self.coeffs.ndim != 3:
            raise ValueError("cell() requires a cell-batched 3-D stack")
        return ArrayForms(self.coeffs[index], backend=self.backend)

    def form(self, index: int) -> CanonicalForm:
        """The scalar view of one row."""
        self._require_2d("form()")
        row = self.backend.to_numpy(self.coeffs[index])
        return CanonicalForm(float(row[0]), row[1:-1].copy(), float(row[-1]))

    def forms(self) -> List[CanonicalForm]:
        """All rows as scalar forms."""
        return [self.form(i) for i in range(self.n_forms)]

    def take(self, indices) -> "ArrayForms":
        """A new stack restricted to the given row indices."""
        rows = [int(i) for i in np.asarray(indices, dtype=int).ravel()]
        return ArrayForms(self.coeffs[..., rows, :], backend=self.backend)

    def copy(self) -> "ArrayForms":
        """An independent copy of the stack."""
        return ArrayForms(self.backend.copy(self.coeffs), backend=self.backend)

    def to_backend(self, backend: ArrayBackend) -> "ArrayForms":
        """The same stack on another array backend (no-op when equal)."""
        if backend is self.backend:
            return self
        return ArrayForms(
            backend.asarray(self.backend.to_numpy(self.coeffs)), backend=backend
        )

    # ------------------------------------------------------------------
    # Arithmetic (row-wise; independent terms combine in quadrature)
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["ArrayForms", CanonicalForm]):
        """Other operand as a broadcastable coefficient matrix."""
        if isinstance(other, ArrayForms):
            if other.n_sources != self.n_sources:
                raise ValueError(
                    f"incompatible stacks: {self.n_sources} vs {other.n_sources} sources"
                )
            return self.backend.asarray(other.coeffs)
        if isinstance(other, CanonicalForm):
            if other.n_sources != self.n_sources:
                raise ValueError(
                    f"incompatible forms: {self.n_sources} vs {other.n_sources} sources"
                )
            row = np.empty((1, self.coeffs.shape[-1]))
            row[0, 0] = other.mean
            row[0, 1:-1] = other.sensitivities
            row[0, -1] = other.independent
            return self.backend.asarray(row)
        raise TypeError(f"cannot combine ArrayForms with {type(other).__name__}")

    def add(self, other: Union["ArrayForms", CanonicalForm]) -> "ArrayForms":
        """Row-wise sum (a single form broadcasts to every row)."""
        xp = self.backend
        rhs = self._coerce(other)
        out = self.coeffs[..., :-1] + rhs[..., :-1]
        indep = xp.hypot(self.independent, rhs[..., -1])
        return ArrayForms(
            xp.concatenate([out, indep[..., None]], axis=-1), backend=xp
        )

    def subtract(self, other: Union["ArrayForms", CanonicalForm]) -> "ArrayForms":
        """Row-wise difference (independent sigmas still add in quadrature)."""
        xp = self.backend
        rhs = self._coerce(other)
        out = self.coeffs[..., :-1] - rhs[..., :-1]
        indep = xp.hypot(self.independent, rhs[..., -1])
        return ArrayForms(
            xp.concatenate([out, indep[..., None]], axis=-1), backend=xp
        )

    def add_constants(self, values) -> "ArrayForms":
        """Add deterministic per-row offsets to the means."""
        xp = self.backend
        out = xp.copy(self.coeffs)
        out[..., 0] += xp.asarray(values)
        return ArrayForms(out, backend=xp)

    def scale(self, factors) -> "ArrayForms":
        """Row-wise scaling (a scalar broadcasts to every row)."""
        xp = self.backend
        factors = xp.asarray(factors)
        if factors.ndim == 0:
            out = self.coeffs * factors
        else:
            out = self.coeffs * factors[..., None]
        out[..., -1] = xp.abs(out[..., -1])
        return ArrayForms(out, backend=xp)

    def negate(self) -> "ArrayForms":
        """Row-wise negation (independent sigma stays positive)."""
        out = -self.coeffs
        out[..., -1] = self.coeffs[..., -1]
        return ArrayForms(out, backend=self.backend)

    def covariances(self, other: "ArrayForms"):
        """Row-wise covariance with another stack of the same shape."""
        rhs = self._coerce(other)
        return self.backend.row_dot(self.sensitivities, rhs[..., 1:-1])

    # ------------------------------------------------------------------
    # Clark's statistical max / min, row-wise
    # ------------------------------------------------------------------
    def clark_max(self, other: "ArrayForms") -> "ArrayForms":
        """Row-wise statistical maximum (Clark's moment matching).

        Evaluates exactly the formulas of
        :meth:`repro.variation.canonical.CanonicalForm.max` elementwise,
        including the degenerate branch (perfectly correlated operands
        with equal spread collapse to whichever mean is larger).
        """
        xp = self.backend
        a, b = self.coeffs, self._coerce(other)
        if tuple(b.shape) != tuple(a.shape):
            try:
                b = xp.broadcast_to(b, a.shape)
            except Exception:
                raise ValueError(
                    f"shape mismatch: {tuple(a.shape)} vs {tuple(b.shape)}"
                ) from None
        return ArrayForms(clark_max_coeffs(a, b, backend=xp), backend=xp)

    def clark_min(self, other: "ArrayForms") -> "ArrayForms":
        """Row-wise statistical minimum via ``min(a, b) = -max(-a, -b)``."""
        return self.negate().clark_max(
            other.negate() if isinstance(other, ArrayForms) else (-other)  # type: ignore[operator]
        ).negate()

    # ------------------------------------------------------------------
    # Monte-Carlo evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        source_samples,
        independent_samples=None,
    ):
        """Evaluate every form against a sample batch in one matmul.

        Parameters
        ----------
        source_samples:
            Array ``(n_sources, n_samples)`` of standard-normal draws of
            the shared sources (shared by every cell of a cell-batched
            stack), or ``(n_cells, n_sources, n_samples)`` for per-cell
            batches.
        independent_samples:
            Optional ``(..., n_forms, n_samples)`` standard-normal draws
            for the independent terms; omitted contributions are
            dropped.

        Returns
        -------
        Array ``(..., n_forms, n_samples)`` on the stack's backend.
        """
        xp = self.backend
        source_samples = xp.asarray(source_samples)
        if (
            source_samples.ndim not in (2, 3)
            or source_samples.shape[-2] != self.n_sources
        ):
            raise ValueError(
                f"source_samples must have shape ({self.n_sources}, n); "
                f"got {tuple(source_samples.shape)}"
            )
        values = self.means[..., None] + self.sensitivities @ source_samples
        if independent_samples is not None and xp.any(self.independent != 0.0):
            independent_samples = xp.asarray(independent_samples)
            if tuple(independent_samples.shape) != tuple(values.shape):
                raise ValueError(
                    f"independent_samples must have shape {tuple(values.shape)}; "
                    f"got {tuple(independent_samples.shape)}"
                )
            values = values + self.independent[..., None] * independent_samples
        return values

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cells = "" if self.n_cells is None else f"n_cells={self.n_cells}, "
        return f"ArrayForms({cells}n_forms={self.n_forms}, n_sources={self.n_sources})"


def clark_max_coeffs(a, b, backend: Optional[ArrayBackend] = None):
    """Clark's max of two aligned coefficient matrices (the kernel).

    Accepts arbitrary leading batch dimensions: ``(..., n_forms, width)``
    inputs are flattened to the 2-D kernel and reshaped back, so the
    reduction order — and therefore every output bit on the numpy
    backend — is identical to a loop over the leading axes.
    """
    xp = backend if backend is not None else numpy_backend()
    a = xp.asarray(a)
    b = xp.asarray(b)
    if a.ndim > 2:
        if tuple(a.shape) != tuple(b.shape):
            raise ValueError(f"shape mismatch: {tuple(a.shape)} vs {tuple(b.shape)}")
        width = a.shape[-1]
        flat = clark_max_coeffs(
            a.reshape(-1, width), b.reshape(-1, width), backend=xp
        )
        return flat.reshape(a.shape)

    mean_a, mean_b = a[:, 0], b[:, 0]
    sens_a, sens_b = a[:, 1:-1], b[:, 1:-1]
    var_a = xp.row_dot(sens_a, sens_a) + a[:, -1] ** 2
    var_b = xp.row_dot(sens_b, sens_b) + b[:, -1] ** 2
    cov = xp.row_dot(sens_a, sens_b)
    theta2 = var_a + var_b - 2.0 * cov
    theta = xp.sqrt(xp.maximum(theta2, 0.0))
    degenerate = theta < _CLARK_DEGENERATE_TOL

    safe_theta = xp.where(degenerate, 1.0, theta)
    alpha = (mean_a - mean_b) / safe_theta
    t = xp.Phi(alpha)
    phi = xp.phi(alpha)
    one_minus_t = 1.0 - t
    mean = mean_a * t + mean_b * one_minus_t + theta * phi
    second = (
        (var_a + mean_a**2) * t
        + (var_b + mean_b**2) * one_minus_t
        + (mean_a + mean_b) * theta * phi
    )
    variance = xp.maximum(second - mean**2, 0.0)
    sens = t[:, None] * sens_a + one_minus_t[:, None] * sens_b
    shared_var = xp.row_dot(sens, sens)
    independent = xp.sqrt(xp.maximum(variance - shared_var, 0.0))

    out = xp.empty_like(a)
    out[:, 0] = mean
    out[:, 1:-1] = sens
    out[:, -1] = independent
    if xp.any(degenerate):
        pick_a = mean_a >= mean_b
        deg_a = degenerate & pick_a
        deg_b = degenerate & ~pick_a
        out[deg_a] = a[deg_a]
        out[deg_b] = b[deg_b]
    return out


def clark_max_many(stacks: Sequence[ArrayForms]) -> ArrayForms:
    """Left-fold Clark max over aligned stacks (at least one required)."""
    if not stacks:
        raise ValueError("clark_max_many requires at least one stack")
    result = stacks[0]
    for stack in stacks[1:]:
        result = result.clark_max(stack)
    return result
