"""Array-native stacks of first-order canonical forms.

:class:`ArrayForms` is the compiled counterpart of
:class:`~repro.variation.canonical.CanonicalForm`: ``n_forms`` canonical
forms stored as one ``(n_forms, n_sources + 2)`` coefficient matrix

* column ``0`` — the means ``a0``,
* columns ``1 .. n_sources`` — the shared-source sensitivities,
* column ``n_sources + 1`` — the independent sigmas ``a_r`` (>= 0).

Every operation of the scalar class exists in vectorised row-wise form:
addition/subtraction (independent terms combine in quadrature), scaling,
Clark's statistical max/min, and Monte-Carlo evaluation of all forms
against a sample batch with a single matrix multiplication
``means + sensitivities @ samples``.  The statistical timing engine
(:mod:`repro.timing.propagate`) sweeps whole levels of the timing graph
through these kernels instead of looping over Python objects, and the
compiled constraint system (:mod:`repro.core.compiled`) keeps the stacked
edge quantities around for batch evaluation.

``CanonicalForm`` remains the scalar view: :meth:`ArrayForms.form`
materialises one row, :meth:`ArrayForms.from_forms` stacks scalar forms.
The two paths agree to within a few ulps (the array path evaluates the
same Clark formulas elementwise); the test suite pins the agreement at
``1e-12``.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.variation.canonical import CanonicalForm

#: Below this spread Clark's max degenerates to picking the larger mean
#: (same constant as the scalar path in :mod:`repro.variation.canonical`).
_CLARK_DEGENERATE_TOL = 1e-12

_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)
_SQRT2 = math.sqrt(2.0)

try:  # pragma: no cover - exercised indirectly on every import
    from scipy.special import erf as _erf
except Exception:  # pragma: no cover - scipy genuinely absent
    _erf_obj = np.frompyfunc(math.erf, 1, 1)

    def _erf(x: np.ndarray) -> np.ndarray:
        return _erf_obj(x).astype(float)


def _phi_vec(x: np.ndarray) -> np.ndarray:
    """Standard normal pdf, elementwise."""
    return _INV_SQRT_2PI * np.exp(-0.5 * x * x)


def _Phi_vec(x: np.ndarray) -> np.ndarray:
    """Standard normal cdf, elementwise."""
    return 0.5 * (1.0 + _erf(x / _SQRT2))


class ArrayForms:
    """A stack of canonical forms as one coefficient matrix.

    Parameters
    ----------
    coeffs:
        Array of shape ``(n_forms, n_sources + 2)`` laid out as
        ``[mean | sensitivities | independent]``.  The array is used
        as-is (no copy) when it already is a float64 matrix.
    """

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: np.ndarray) -> None:
        coeffs = np.asarray(coeffs, dtype=float)
        if coeffs.ndim != 2 or coeffs.shape[1] < 2:
            raise ValueError(
                "coeffs must have shape (n_forms, n_sources + 2); "
                f"got {coeffs.shape}"
            )
        self.coeffs = coeffs

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, n_forms: int, n_sources: int) -> "ArrayForms":
        """``n_forms`` zero forms over ``n_sources`` shared sources."""
        return cls(np.zeros((n_forms, n_sources + 2)))

    @classmethod
    def constants(cls, values: Sequence[float], n_sources: int) -> "ArrayForms":
        """Deterministic values expressed as canonical forms."""
        values = np.asarray(values, dtype=float)
        coeffs = np.zeros((values.shape[0], n_sources + 2))
        coeffs[:, 0] = values
        return cls(coeffs)

    @classmethod
    def from_forms(
        cls, forms: Iterable[CanonicalForm], n_sources: Optional[int] = None
    ) -> "ArrayForms":
        """Stack scalar :class:`CanonicalForm` objects into one matrix.

        ``n_sources`` is only needed for an empty iterable, where the
        source dimension cannot be inferred.
        """
        forms = list(forms)
        if not forms:
            if n_sources is None:
                raise ValueError("n_sources is required to stack zero forms")
            return cls.zeros(0, n_sources)
        width = forms[0].n_sources
        coeffs = np.empty((len(forms), width + 2))
        for row, form in enumerate(forms):
            if form.n_sources != width:
                raise ValueError(
                    f"incompatible forms: {width} vs {form.n_sources} sources"
                )
            coeffs[row, 0] = form.mean
            coeffs[row, 1:-1] = form.sensitivities
            coeffs[row, -1] = form.independent
        return cls(coeffs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_forms(self) -> int:
        """Number of stacked forms (rows)."""
        return int(self.coeffs.shape[0])

    @property
    def n_sources(self) -> int:
        """Number of shared variation sources."""
        return int(self.coeffs.shape[1] - 2)

    def __len__(self) -> int:
        return self.n_forms

    @property
    def means(self) -> np.ndarray:
        """Vector of the ``a0`` terms (view into the matrix)."""
        return self.coeffs[:, 0]

    @property
    def sensitivities(self) -> np.ndarray:
        """Matrix ``(n_forms, n_sources)`` of shared sensitivities (view)."""
        return self.coeffs[:, 1:-1]

    @property
    def independent(self) -> np.ndarray:
        """Vector of independent sigmas (view into the matrix)."""
        return self.coeffs[:, -1]

    def variances(self) -> np.ndarray:
        """Total variance (shared + independent) of every form."""
        sens = self.sensitivities
        return np.einsum("ij,ij->i", sens, sens) + self.independent**2

    def stds(self) -> np.ndarray:
        """Total standard deviation of every form."""
        return np.sqrt(np.maximum(self.variances(), 0.0))

    def form(self, index: int) -> CanonicalForm:
        """The scalar view of one row."""
        row = self.coeffs[index]
        return CanonicalForm(float(row[0]), row[1:-1].copy(), float(row[-1]))

    def forms(self) -> List[CanonicalForm]:
        """All rows as scalar forms."""
        return [self.form(i) for i in range(self.n_forms)]

    def take(self, indices) -> "ArrayForms":
        """A new stack restricted to the given row indices."""
        return ArrayForms(self.coeffs[np.asarray(indices, dtype=int)])

    def copy(self) -> "ArrayForms":
        """An independent copy of the stack."""
        return ArrayForms(self.coeffs.copy())

    # ------------------------------------------------------------------
    # Arithmetic (row-wise; independent terms combine in quadrature)
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["ArrayForms", CanonicalForm]) -> np.ndarray:
        """Other operand as a broadcastable coefficient matrix."""
        if isinstance(other, ArrayForms):
            if other.n_sources != self.n_sources:
                raise ValueError(
                    f"incompatible stacks: {self.n_sources} vs {other.n_sources} sources"
                )
            return other.coeffs
        if isinstance(other, CanonicalForm):
            if other.n_sources != self.n_sources:
                raise ValueError(
                    f"incompatible forms: {self.n_sources} vs {other.n_sources} sources"
                )
            row = np.empty((1, self.coeffs.shape[1]))
            row[0, 0] = other.mean
            row[0, 1:-1] = other.sensitivities
            row[0, -1] = other.independent
            return row
        raise TypeError(f"cannot combine ArrayForms with {type(other).__name__}")

    def add(self, other: Union["ArrayForms", CanonicalForm]) -> "ArrayForms":
        """Row-wise sum (a single form broadcasts to every row)."""
        rhs = self._coerce(other)
        out = self.coeffs[:, :-1] + rhs[:, :-1]
        indep = np.hypot(self.independent, rhs[:, -1])
        return ArrayForms(np.column_stack([out, indep]))

    def subtract(self, other: Union["ArrayForms", CanonicalForm]) -> "ArrayForms":
        """Row-wise difference (independent sigmas still add in quadrature)."""
        rhs = self._coerce(other)
        out = self.coeffs[:, :-1] - rhs[:, :-1]
        indep = np.hypot(self.independent, rhs[:, -1])
        return ArrayForms(np.column_stack([out, indep]))

    def add_constants(self, values) -> "ArrayForms":
        """Add deterministic per-row offsets to the means."""
        out = self.coeffs.copy()
        out[:, 0] += np.asarray(values, dtype=float)
        return ArrayForms(out)

    def scale(self, factors) -> "ArrayForms":
        """Row-wise scaling (a scalar broadcasts to every row)."""
        factors = np.asarray(factors, dtype=float)
        if factors.ndim == 0:
            factors = factors[None]
        out = self.coeffs * factors[:, None]
        out[:, -1] = np.abs(out[:, -1])
        return ArrayForms(out)

    def negate(self) -> "ArrayForms":
        """Row-wise negation (independent sigma stays positive)."""
        out = -self.coeffs
        out[:, -1] = self.coeffs[:, -1]
        return ArrayForms(out)

    def covariances(self, other: "ArrayForms") -> np.ndarray:
        """Row-wise covariance with another stack of the same shape."""
        rhs = self._coerce(other)
        return np.einsum("ij,ij->i", self.sensitivities, rhs[:, 1:-1])

    # ------------------------------------------------------------------
    # Clark's statistical max / min, row-wise
    # ------------------------------------------------------------------
    def clark_max(self, other: "ArrayForms") -> "ArrayForms":
        """Row-wise statistical maximum (Clark's moment matching).

        Evaluates exactly the formulas of
        :meth:`repro.variation.canonical.CanonicalForm.max` elementwise,
        including the degenerate branch (perfectly correlated operands
        with equal spread collapse to whichever mean is larger).
        """
        a, b = self.coeffs, self._coerce(other)
        if b.shape[0] == 1 and a.shape[0] > 1:
            b = np.broadcast_to(b, a.shape)
        if a.shape != b.shape:
            raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
        return ArrayForms(clark_max_coeffs(a, b))

    def clark_min(self, other: "ArrayForms") -> "ArrayForms":
        """Row-wise statistical minimum via ``min(a, b) = -max(-a, -b)``."""
        return self.negate().clark_max(
            other.negate() if isinstance(other, ArrayForms) else (-other)  # type: ignore[operator]
        ).negate()

    # ------------------------------------------------------------------
    # Monte-Carlo evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        source_samples: np.ndarray,
        independent_samples: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Evaluate every form against a sample batch in one matmul.

        Parameters
        ----------
        source_samples:
            Array ``(n_sources, n_samples)`` of standard-normal draws of
            the shared sources.
        independent_samples:
            Optional ``(n_forms, n_samples)`` standard-normal draws for
            the independent terms; omitted contributions are dropped.

        Returns
        -------
        numpy.ndarray
            Array ``(n_forms, n_samples)``.
        """
        source_samples = np.asarray(source_samples, dtype=float)
        if source_samples.ndim != 2 or source_samples.shape[0] != self.n_sources:
            raise ValueError(
                f"source_samples must have shape ({self.n_sources}, n); "
                f"got {source_samples.shape}"
            )
        values = self.means[:, None] + self.sensitivities @ source_samples
        if independent_samples is not None and np.any(self.independent != 0.0):
            independent_samples = np.asarray(independent_samples, dtype=float)
            if independent_samples.shape != values.shape:
                raise ValueError(
                    f"independent_samples must have shape {values.shape}; "
                    f"got {independent_samples.shape}"
                )
            values = values + self.independent[:, None] * independent_samples
        return values

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayForms(n_forms={self.n_forms}, n_sources={self.n_sources})"


def clark_max_coeffs(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Clark's max of two aligned coefficient matrices (the kernel)."""
    mean_a, mean_b = a[:, 0], b[:, 0]
    sens_a, sens_b = a[:, 1:-1], b[:, 1:-1]
    var_a = np.einsum("ij,ij->i", sens_a, sens_a) + a[:, -1] ** 2
    var_b = np.einsum("ij,ij->i", sens_b, sens_b) + b[:, -1] ** 2
    cov = np.einsum("ij,ij->i", sens_a, sens_b)
    theta2 = var_a + var_b - 2.0 * cov
    theta = np.sqrt(np.maximum(theta2, 0.0))
    degenerate = theta < _CLARK_DEGENERATE_TOL

    safe_theta = np.where(degenerate, 1.0, theta)
    alpha = (mean_a - mean_b) / safe_theta
    t = _Phi_vec(alpha)
    phi = _phi_vec(alpha)
    one_minus_t = 1.0 - t
    mean = mean_a * t + mean_b * one_minus_t + theta * phi
    second = (
        (var_a + mean_a**2) * t
        + (var_b + mean_b**2) * one_minus_t
        + (mean_a + mean_b) * theta * phi
    )
    variance = np.maximum(second - mean**2, 0.0)
    sens = t[:, None] * sens_a + one_minus_t[:, None] * sens_b
    shared_var = np.einsum("ij,ij->i", sens, sens)
    independent = np.sqrt(np.maximum(variance - shared_var, 0.0))

    out = np.empty_like(a)
    out[:, 0] = mean
    out[:, 1:-1] = sens
    out[:, -1] = independent
    if np.any(degenerate):
        pick_a = mean_a >= mean_b
        deg_a = degenerate & pick_a
        deg_b = degenerate & ~pick_a
        out[deg_a] = a[deg_a]
        out[deg_b] = b[deg_b]
    return out


def clark_max_many(stacks: Sequence[ArrayForms]) -> ArrayForms:
    """Left-fold Clark max over aligned stacks (at least one required)."""
    if not stacks:
        raise ValueError("clark_max_many requires at least one stack")
    result = stacks[0]
    for stack in stacks[1:]:
        result = result.clark_max(stack)
    return result
