"""Circuit-level variation model.

:class:`VariationModel` turns the physical variation sources of
:mod:`repro.variation.sources` into a concrete set of *shared* standard
normal variables for one die:

* one **global** variable per physical source (die-to-die variation),
* one **regional** variable per physical source and per cell of a
  rectangular spatial grid laid over the die (within-die, spatially
  correlated variation),
* plus a purely **independent** contribution folded into each gate's
  canonical form.

Given a gate's nominal delay and its location on the die, the model builds
the first-order canonical form of the gate's delay.  This is the interface
the statistical timing engine (:mod:`repro.timing.propagate`) consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_positive
from repro.variation.canonical import CanonicalForm
from repro.variation.sources import DEFAULT_SOURCES, VariationSource


@dataclass(frozen=True)
class GateDelayModel:
    """Statistical description of one gate's (or FF timing quantity's) delay.

    Attributes
    ----------
    nominal:
        Nominal delay in library time units.
    form:
        The delay's first-order canonical form.
    """

    nominal: float
    form: CanonicalForm

    @property
    def sigma(self) -> float:
        """Total delay standard deviation."""
        return self.form.std


class VariationModel:
    """Shared-variation bookkeeping for one die.

    Parameters
    ----------
    die_width, die_height:
        Physical extent of the die (same units as the placement produced by
        :mod:`repro.circuit.placement`).
    grid_rows, grid_cols:
        Size of the spatial-correlation grid.  ``1 x 1`` collapses the
        spatial component onto a single within-die variable.
    sources:
        Physical variation sources (defaults to the paper's three).
    """

    def __init__(
        self,
        die_width: float = 100.0,
        die_height: float = 100.0,
        grid_rows: int = 4,
        grid_cols: int = 4,
        sources: Sequence[VariationSource] = DEFAULT_SOURCES,
    ) -> None:
        check_positive(die_width, "die_width")
        check_positive(die_height, "die_height")
        if grid_rows < 1 or grid_cols < 1:
            raise ValueError("grid must contain at least one region")
        self.die_width = float(die_width)
        self.die_height = float(die_height)
        self.grid_rows = int(grid_rows)
        self.grid_cols = int(grid_cols)
        self.sources: Tuple[VariationSource, ...] = tuple(sources)
        if not self.sources:
            raise ValueError("at least one variation source is required")

        self._n_regions = self.grid_rows * self.grid_cols
        # Layout of the shared-variable vector:
        #   [global_src0, ..., global_srcP,
        #    region0_src0, ..., region0_srcP, region1_src0, ...]
        self._n_shared = len(self.sources) * (1 + self._n_regions)
        self._source_names = self._build_names()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _build_names(self) -> List[str]:
        names = [f"global:{src.name}" for src in self.sources]
        for region in range(self._n_regions):
            names.extend(f"region{region}:{src.name}" for src in self.sources)
        return names

    @property
    def n_shared_sources(self) -> int:
        """Number of shared standard-normal variables of this model."""
        return self._n_shared

    @property
    def n_regions(self) -> int:
        """Number of spatial-correlation regions."""
        return self._n_regions

    @property
    def source_names(self) -> List[str]:
        """Human-readable names of the shared variables (index order)."""
        return list(self._source_names)

    # ------------------------------------------------------------------
    # Spatial grid
    # ------------------------------------------------------------------
    def region_of(self, x: float, y: float) -> int:
        """Return the spatial-grid region index of a die location."""
        col = int(min(self.grid_cols - 1, max(0, math.floor(x / self.die_width * self.grid_cols))))
        row = int(min(self.grid_rows - 1, max(0, math.floor(y / self.die_height * self.grid_rows))))
        return row * self.grid_cols + col

    # ------------------------------------------------------------------
    # Canonical-form construction
    # ------------------------------------------------------------------
    def delay_form(
        self,
        nominal_delay: float,
        x: Optional[float] = None,
        y: Optional[float] = None,
        sigma_scale: float = 1.0,
    ) -> GateDelayModel:
        """Build the canonical delay form of a gate.

        Parameters
        ----------
        nominal_delay:
            Nominal delay of the gate (library value).
        x, y:
            Die location; when omitted the gate is placed at the die centre
            (its spatial component still exists but lands in the centre
            region).
        sigma_scale:
            Optional multiplier on all variation sensitivities, used e.g.
            to model cells that are more or less sensitive than average.
        """
        if nominal_delay < 0:
            raise ValueError(f"nominal_delay must be >= 0, got {nominal_delay}")
        if x is None:
            x = self.die_width / 2.0
        if y is None:
            y = self.die_height / 2.0
        region = self.region_of(x, y)

        sens = np.zeros(self._n_shared)
        independent_var = 0.0
        n_params = len(self.sources)
        for p, src in enumerate(self.sources):
            sigma_total = src.delay_sigma_fraction * nominal_delay * sigma_scale
            g_frac, s_frac, i_frac = src.split.as_tuple()
            sens[p] = sigma_total * math.sqrt(g_frac)
            sens[n_params * (1 + region) + p] = sigma_total * math.sqrt(s_frac)
            independent_var += (sigma_total**2) * i_frac
        form = CanonicalForm(float(nominal_delay), sens, math.sqrt(independent_var))
        return GateDelayModel(float(nominal_delay), form)

    def constant_form(self, value: float) -> CanonicalForm:
        """A deterministic quantity expressed in this model's source space."""
        return CanonicalForm.constant(float(value), self._n_shared)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VariationModel(die={self.die_width}x{self.die_height}, "
            f"grid={self.grid_rows}x{self.grid_cols}, "
            f"sources={[s.name for s in self.sources]})"
        )
