"""Shared engine-backed evaluation for the baseline strategies.

Every baseline is "build a plan, evaluate its yield on fresh samples";
only the plan builder differs.  This helper owns the single
plan-to-report path so executor lifecycle (and any future evaluation
knob) lives in one place, plus the name-keyed plan-builder registry the
campaign subsystem uses to run comparison strategies declaratively.
"""

from __future__ import annotations

from typing import Optional

from repro.circuit.design import CircuitDesign
from repro.core.config import BufferSpec
from repro.core.results import BufferPlan
from repro.timing.constraints import SequentialConstraintGraph
from repro.utils.rng import RngLike

#: Names accepted by :func:`build_baseline_plan` (and campaign specs).
BASELINE_CHOICES = ("every_ff", "criticality", "random")


def build_baseline_plan(
    name: str,
    design: CircuitDesign,
    target_period: float,
    n_buffers: int,
    buffer_spec: Optional[BufferSpec] = None,
    constraint_graph: Optional[SequentialConstraintGraph] = None,
    rng: RngLike = 0,
) -> BufferPlan:
    """Build the plan of one named baseline strategy.

    ``n_buffers`` caps the buffer count of the ``criticality`` and
    ``random`` strategies (typically set to the proposed flow's buffer
    count for an equal-area comparison); ``every_ff`` ignores it.
    ``rng`` only affects ``random``.
    """
    from repro.baselines.criticality import criticality_plan
    from repro.baselines.every_ff import every_ff_plan
    from repro.baselines.random_placement import random_plan

    if name == "every_ff":
        return every_ff_plan(design, target_period, buffer_spec=buffer_spec)
    if name == "criticality":
        return criticality_plan(
            design,
            target_period,
            n_buffers,
            buffer_spec=buffer_spec,
            constraint_graph=constraint_graph,
        )
    if name == "random":
        return random_plan(
            design, target_period, n_buffers, buffer_spec=buffer_spec, rng=rng
        )
    raise ValueError(f"unknown baseline {name!r}; choose from {BASELINE_CHOICES}")


def evaluate_plan_on_engine(
    design: CircuitDesign,
    plan: BufferPlan,
    target_period: float,
    constraint_graph: Optional[SequentialConstraintGraph] = None,
    n_samples: int = 2000,
    rng: int = 0,
    executor=None,
    jobs: Optional[int] = None,
):
    """Evaluate a finished plan's yield through the execution engine.

    The Monte-Carlo sweep runs on ``executor`` (an executor name, an
    existing :class:`repro.engine.Executor`, or ``None`` for serial); a
    pool created here by name is closed before returning.  Returns a
    :class:`repro.yieldsim.report.YieldReport`.
    """
    from repro.yieldsim.estimator import YieldEstimator

    with YieldEstimator(
        design,
        constraint_graph=constraint_graph,
        n_samples=n_samples,
        rng=rng,
        executor=executor,
        jobs=jobs,
    ) as estimator:
        return estimator.evaluate_plan(plan, target_period)
