"""Shared engine-backed evaluation for the baseline strategies.

Every baseline is "build a plan, evaluate its yield on fresh samples";
only the plan builder differs.  This helper owns the single
plan-to-report path so executor lifecycle (and any future evaluation
knob) lives in one place.
"""

from __future__ import annotations

from typing import Optional

from repro.circuit.design import CircuitDesign
from repro.core.results import BufferPlan
from repro.timing.constraints import SequentialConstraintGraph


def evaluate_plan_on_engine(
    design: CircuitDesign,
    plan: BufferPlan,
    target_period: float,
    constraint_graph: Optional[SequentialConstraintGraph] = None,
    n_samples: int = 2000,
    rng: int = 0,
    executor=None,
    jobs: Optional[int] = None,
):
    """Evaluate a finished plan's yield through the execution engine.

    The Monte-Carlo sweep runs on ``executor`` (an executor name, an
    existing :class:`repro.engine.Executor`, or ``None`` for serial); a
    pool created here by name is closed before returning.  Returns a
    :class:`repro.yieldsim.report.YieldReport`.
    """
    from repro.yieldsim.estimator import YieldEstimator

    with YieldEstimator(
        design,
        constraint_graph=constraint_graph,
        n_samples=n_samples,
        rng=rng,
        executor=executor,
        jobs=jobs,
    ) as estimator:
        return estimator.evaluate_plan(plan, target_period)
