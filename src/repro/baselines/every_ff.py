"""Baseline: a tuning buffer at every flip-flop.

This is the most expensive possible insertion (area proportional to the
flip-flop count) and provides an upper bound on the yield any placement
strategy can reach with the given buffer hardware.  The proposed method's
value proposition is reaching a comparable yield with a tiny fraction of
these buffers.
"""

from __future__ import annotations

from typing import Optional

from repro.circuit.design import CircuitDesign
from repro.core.config import BufferSpec
from repro.core.results import Buffer, BufferPlan


def every_ff_plan(
    design: CircuitDesign,
    target_period: float,
    buffer_spec: Optional[BufferSpec] = None,
) -> BufferPlan:
    """Buffer plan with a symmetric full-range buffer at every flip-flop."""
    spec = buffer_spec or BufferSpec()
    max_range = spec.max_range(target_period)
    step = spec.step_size(target_period) if spec.discrete else 0.0
    half = max_range / 2.0
    buffers = [
        Buffer(flip_flop=ff, lower=-half, upper=half, step=step, usage_count=0)
        for ff in design.netlist.flip_flops
    ]
    return BufferPlan(buffers=buffers, target_period=float(target_period))


def evaluate_every_ff(
    design: CircuitDesign,
    target_period: float,
    buffer_spec: Optional[BufferSpec] = None,
    constraint_graph=None,
    n_samples: int = 2000,
    rng: int = 0,
    executor=None,
    jobs: Optional[int] = None,
):
    """Build the every-flip-flop plan and evaluate its yield on the engine.

    This baseline buffers every flip-flop, so its evaluation sweep is the
    most expensive of the three — the executor fan-out matters most here.
    Returns a :class:`repro.yieldsim.report.YieldReport`.
    """
    from repro.baselines.harness import evaluate_plan_on_engine

    plan = every_ff_plan(design, target_period, buffer_spec=buffer_spec)
    return evaluate_plan_on_engine(
        design,
        plan,
        target_period,
        constraint_graph=constraint_graph,
        n_samples=n_samples,
        rng=rng,
        executor=executor,
        jobs=jobs,
    )
