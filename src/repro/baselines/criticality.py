"""Baseline: criticality-driven buffer placement with symmetric ranges.

A statistical-timing-driven heuristic in the spirit of the paper's
reference [2] (Tsai et al., ICCAD 2005): flip-flops are ranked by how
likely they are to terminate or launch a failing register-to-register
stage at the target period, and the top-k receive a tuning buffer with a
symmetric range.  Unlike the proposed method the ranges are neither
asymmetric nor minimised, and no sampling-based support minimisation takes
place.
"""

from __future__ import annotations

import math
from typing import Dict, Optional


from repro.circuit.design import CircuitDesign
from repro.core.config import BufferSpec
from repro.core.results import Buffer, BufferPlan
from repro.timing.constraints import SequentialConstraintGraph, ensure_constraint_graph


def flip_flop_criticality(
    design: CircuitDesign,
    target_period: float,
    constraint_graph: Optional[SequentialConstraintGraph] = None,
) -> Dict[str, float]:
    """Statistical criticality score per flip-flop.

    The score of an edge is the probability (under the canonical Gaussian
    model) that its setup constraint fails at the target period; a
    flip-flop accumulates the scores of its incident edges.
    """
    graph = constraint_graph or ensure_constraint_graph(design)
    scores: Dict[str, float] = {ff: 0.0 for ff in graph.ff_names}
    for edge in graph.edges:
        quantity = edge.setup_quantity
        slack_mean = target_period + edge.skew_difference - quantity.mean
        sigma = quantity.std
        if sigma <= 0:
            probability = 1.0 if slack_mean < 0 else 0.0
        else:
            probability = 0.5 * (1.0 - math.erf(slack_mean / (sigma * math.sqrt(2.0))))
        scores[edge.launch] += probability
        scores[edge.capture] += probability
    return scores


def criticality_plan(
    design: CircuitDesign,
    target_period: float,
    n_buffers: int,
    buffer_spec: Optional[BufferSpec] = None,
    constraint_graph: Optional[SequentialConstraintGraph] = None,
) -> BufferPlan:
    """Place ``n_buffers`` symmetric buffers at the most critical flip-flops."""
    if n_buffers < 0:
        raise ValueError("n_buffers must be non-negative")
    spec = buffer_spec or BufferSpec()
    max_range = spec.max_range(target_period)
    step = spec.step_size(target_period) if spec.discrete else 0.0
    half = max_range / 2.0

    scores = flip_flop_criticality(design, target_period, constraint_graph)
    ranked = sorted(scores, key=lambda ff: scores[ff], reverse=True)
    buffers = [
        Buffer(flip_flop=ff, lower=-half, upper=half, step=step, usage_count=0)
        for ff in ranked[:n_buffers]
    ]
    return BufferPlan(buffers=buffers, target_period=float(target_period))


def evaluate_criticality(
    design: CircuitDesign,
    target_period: float,
    n_buffers: int,
    buffer_spec: Optional[BufferSpec] = None,
    constraint_graph: Optional[SequentialConstraintGraph] = None,
    n_samples: int = 2000,
    rng: int = 0,
    executor=None,
    jobs: Optional[int] = None,
):
    """Build the criticality plan and evaluate its yield on the engine.

    The Monte-Carlo evaluation sweep runs through
    :mod:`repro.engine` with the given executor (serial by default);
    returns a :class:`repro.yieldsim.report.YieldReport`.
    """
    from repro.baselines.harness import evaluate_plan_on_engine

    plan = criticality_plan(
        design, target_period, n_buffers, buffer_spec=buffer_spec, constraint_graph=constraint_graph
    )
    return evaluate_plan_on_engine(
        design,
        plan,
        target_period,
        constraint_graph=constraint_graph,
        n_samples=n_samples,
        rng=rng,
        executor=executor,
        jobs=jobs,
    )
