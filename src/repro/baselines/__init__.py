"""Baseline buffer-insertion strategies.

The paper's implicit baselines are "no buffers" (the original yield) and
the statistical clock-tree tuning of reference [2] which places symmetric
tuning buffers by criticality.  This subpackage provides comparable
strategies so the benchmark harness can report who wins and by how much:

* :mod:`repro.baselines.every_ff` — a tuning buffer at every flip-flop
  with the full symmetric range (upper bound on achievable yield, maximal
  area);
* :mod:`repro.baselines.criticality` — buffers at the top-k statistically
  most critical flip-flops with symmetric ranges (a Tsai-2005-style
  heuristic);
* :mod:`repro.baselines.random_placement` — buffers at k random flip-flops
  (sanity baseline).
"""

from repro.baselines.criticality import criticality_plan, flip_flop_criticality
from repro.baselines.every_ff import every_ff_plan
from repro.baselines.random_placement import random_plan

__all__ = [
    "every_ff_plan",
    "criticality_plan",
    "flip_flop_criticality",
    "random_plan",
]
