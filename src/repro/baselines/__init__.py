"""Baseline buffer-insertion strategies.

The paper's implicit baselines are "no buffers" (the original yield) and
the statistical clock-tree tuning of reference [2] which places symmetric
tuning buffers by criticality.  This subpackage provides comparable
strategies so the benchmark harness can report who wins and by how much:

* :mod:`repro.baselines.every_ff` — a tuning buffer at every flip-flop
  with the full symmetric range (upper bound on achievable yield, maximal
  area);
* :mod:`repro.baselines.criticality` — buffers at the top-k statistically
  most critical flip-flops with symmetric ranges (a Tsai-2005-style
  heuristic);
* :mod:`repro.baselines.random_placement` — buffers at k random flip-flops
  (sanity baseline).

The ``evaluate_*`` companions build a plan and run its Monte-Carlo
yield sweep through the execution engine (:mod:`repro.engine`), so the
baseline comparisons parallelise the same way the main flow does.
"""

from repro.baselines.criticality import (
    criticality_plan,
    evaluate_criticality,
    flip_flop_criticality,
)
from repro.baselines.every_ff import evaluate_every_ff, every_ff_plan
from repro.baselines.harness import (
    BASELINE_CHOICES,
    build_baseline_plan,
    evaluate_plan_on_engine,
)
from repro.baselines.random_placement import evaluate_random, random_plan

__all__ = [
    "BASELINE_CHOICES",
    "build_baseline_plan",
    "every_ff_plan",
    "criticality_plan",
    "flip_flop_criticality",
    "random_plan",
    "evaluate_criticality",
    "evaluate_every_ff",
    "evaluate_plan_on_engine",
    "evaluate_random",
]
