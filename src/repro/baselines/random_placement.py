"""Baseline: buffers at random flip-flops (sanity check).

Any sensible placement strategy must comfortably beat random placement at
equal buffer count; the benchmark harness uses this to show that the
proposed method's yield gains come from *where* the buffers sit, not
merely from how many there are.
"""

from __future__ import annotations

from typing import Optional

from repro.circuit.design import CircuitDesign
from repro.core.config import BufferSpec
from repro.core.results import Buffer, BufferPlan
from repro.utils.rng import RngLike, ensure_rng


def random_plan(
    design: CircuitDesign,
    target_period: float,
    n_buffers: int,
    buffer_spec: Optional[BufferSpec] = None,
    rng: RngLike = None,
) -> BufferPlan:
    """Buffer plan with ``n_buffers`` symmetric buffers at random flip-flops."""
    if n_buffers < 0:
        raise ValueError("n_buffers must be non-negative")
    spec = buffer_spec or BufferSpec()
    generator = ensure_rng(rng)
    max_range = spec.max_range(target_period)
    step = spec.step_size(target_period) if spec.discrete else 0.0
    half = max_range / 2.0

    flip_flops = list(design.netlist.flip_flops)
    n_buffers = min(n_buffers, len(flip_flops))
    chosen = generator.choice(len(flip_flops), size=n_buffers, replace=False) if n_buffers else []
    buffers = [
        Buffer(flip_flop=flip_flops[int(i)], lower=-half, upper=half, step=step)
        for i in chosen
    ]
    return BufferPlan(buffers=buffers, target_period=float(target_period))


def evaluate_random(
    design: CircuitDesign,
    target_period: float,
    n_buffers: int,
    buffer_spec: Optional[BufferSpec] = None,
    constraint_graph=None,
    rng: RngLike = 0,
    n_samples: int = 2000,
    eval_rng: int = 0,
    executor=None,
    jobs: Optional[int] = None,
):
    """Build a random plan and evaluate its yield on the engine.

    ``rng`` seeds the placement, ``eval_rng`` the evaluation batch; the
    sweep runs through :mod:`repro.engine` with the given executor and
    returns a :class:`repro.yieldsim.report.YieldReport`.
    """
    from repro.baselines.harness import evaluate_plan_on_engine

    plan = random_plan(design, target_period, n_buffers, buffer_spec=buffer_spec, rng=rng)
    return evaluate_plan_on_engine(
        design,
        plan,
        target_period,
        constraint_graph=constraint_graph,
        n_samples=n_samples,
        rng=eval_rng,
        executor=executor,
        jobs=jobs,
    )
