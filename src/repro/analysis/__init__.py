"""Analysis and reporting utilities.

* :mod:`repro.analysis.histograms` — tuning-value histograms (the data
  behind the paper's Fig. 5a–c);
* :mod:`repro.analysis.correlation` — buffer-pair correlation summaries
  (the data behind Fig. 6);
* :mod:`repro.analysis.tables` — Table-I style result rows and text
  rendering used by the benchmark harness and ``EXPERIMENTS.md``.
"""

from repro.analysis.correlation import correlation_summary
from repro.analysis.histograms import TuningHistogram, tuning_histogram
from repro.analysis.tables import TableOneRow, format_table_one, rows_to_markdown

__all__ = [
    "TuningHistogram",
    "tuning_histogram",
    "correlation_summary",
    "TableOneRow",
    "format_table_one",
    "rows_to_markdown",
]
