"""Buffer-pair correlation summaries (paper Fig. 6).

The grouping step relies on the pairwise correlation of buffer tuning
values across samples.  :func:`correlation_summary` reports the correlation
matrix together with the pairs that qualify for grouping under the paper's
thresholds, which is the information Fig. 6 illustrates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.grouping import tuning_correlation_matrix


@dataclass
class CorrelationSummary:
    """Pairwise tuning correlations and the groupable pairs.

    Attributes
    ----------
    flip_flops:
        Buffer order of the matrix.
    matrix:
        Pearson correlation matrix of the tuning-value vectors.
    groupable_pairs:
        Pairs ``(ff_a, ff_b, correlation, distance)`` that pass both the
        correlation and the distance threshold.
    """

    flip_flops: List[str]
    matrix: np.ndarray
    groupable_pairs: List[Tuple[str, str, float, float]] = field(default_factory=list)

    @property
    def n_groupable_pairs(self) -> int:
        """Number of buffer pairs eligible for sharing a physical buffer."""
        return len(self.groupable_pairs)

    def max_off_diagonal(self) -> float:
        """Largest correlation between two distinct buffers."""
        n = len(self.flip_flops)
        if n < 2:
            return 0.0
        mask = ~np.eye(n, dtype=bool)
        return float(np.max(self.matrix[mask]))


def correlation_summary(
    flip_flops: Sequence[str],
    tuning_matrix: np.ndarray,
    locations: Dict[str, Tuple[float, float]],
    correlation_threshold: float = 0.8,
    distance_threshold: float = math.inf,
) -> CorrelationSummary:
    """Compute the correlation matrix and the groupable buffer pairs."""
    flip_flops = list(flip_flops)
    matrix = tuning_correlation_matrix(tuning_matrix)
    pairs: List[Tuple[str, str, float, float]] = []
    for i in range(len(flip_flops)):
        for j in range(i + 1, len(flip_flops)):
            corr = float(matrix[i, j])
            xa, ya = locations[flip_flops[i]]
            xb, yb = locations[flip_flops[j]]
            distance = abs(xa - xb) + abs(ya - yb)
            if corr >= correlation_threshold and distance <= distance_threshold:
                pairs.append((flip_flops[i], flip_flops[j], corr, distance))
    return CorrelationSummary(flip_flops=flip_flops, matrix=matrix, groupable_pairs=pairs)
