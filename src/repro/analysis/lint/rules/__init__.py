"""The shipped rule catalogue.

Each rule lives in its own module; :func:`build_rules` instantiates a
fresh set per run (rules may carry cross-file state for ``finish()``).
``RULE_NAMES`` is the stable, sorted identifier list the CLI exposes
via ``--rule`` and ``--list-rules``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from repro.analysis.lint.core import LintError, Rule
from repro.analysis.lint.rules.canonical_json import CanonicalJsonRule
from repro.analysis.lint.rules.cli_conventions import CliConventionsRule
from repro.analysis.lint.rules.determinism import DeterminismRule
from repro.analysis.lint.rules.obs_naming import ObsNamingRule
from repro.analysis.lint.rules.transactions import TransactionDisciplineRule

#: Every shipped rule class, in catalogue order.
RULE_CLASSES: Sequence[Type[Rule]] = (
    CanonicalJsonRule,
    CliConventionsRule,
    DeterminismRule,
    ObsNamingRule,
    TransactionDisciplineRule,
)

RULE_REGISTRY: Dict[str, Type[Rule]] = {cls.name: cls for cls in RULE_CLASSES}

#: Stable identifier list (CLI ``--rule`` choices).
RULE_NAMES: Sequence[str] = tuple(sorted(RULE_REGISTRY))


def build_rules(names: Optional[Sequence[str]] = None) -> List[Rule]:
    """Fresh rule instances for one run (all rules, or just ``names``)."""
    if names is None:
        return [cls() for cls in RULE_CLASSES]
    unknown = sorted(set(names) - set(RULE_REGISTRY))
    if unknown:
        raise LintError(
            f"unknown rule(s) {', '.join(repr(name) for name in unknown)}; "
            f"available: {', '.join(RULE_NAMES)}"
        )
    return [RULE_REGISTRY[name]() for name in dict.fromkeys(names)]


__all__ = [
    "RULE_CLASSES",
    "RULE_NAMES",
    "RULE_REGISTRY",
    "build_rules",
    "CanonicalJsonRule",
    "CliConventionsRule",
    "DeterminismRule",
    "ObsNamingRule",
    "TransactionDisciplineRule",
]
