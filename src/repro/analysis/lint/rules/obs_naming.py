"""Rule ``obs-naming`` — span/metric names are static and well-formed.

The obs surface (``repro.obs``) is append-only telemetry: span names
feed ``trace summary`` groupings, metric names feed manifests and the
Prometheus endpoint.  Free-form names rot fast, so the convention is:

* names are **static string literals** at the call site (greppable,
  and statically checkable for collisions);
* they match ``^[a-z][a-z0-9_.]*$`` (dotted lowercase — what the
  Prometheus renderer and trace summary both assume);
* one name is **one metric kind** everywhere: the runtime registry
  raises on a counter/gauge/histogram kind collision, but only when
  the second call site actually executes — the cross-file pass here
  reports it before any process does.

A few modules fold a *closed* dimension set into names with f-strings
(``store.<driver>.<op>``); they are allowlisted in the config with a
justification, and their static f-string skeleton is still
grammar-checked.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.lint.core import FileContext, Finding, Rule

#: The naming grammar every span/metric name must match.
NAME_RE = re.compile(r"^[a-z][a-z0-9_.]*$")

#: Registry factory methods, keyed by the metric kind they register.
_METRIC_ATTRS = ("counter", "gauge", "histogram")

#: Function names that open spans when called bare (obs re-exports).
_SPAN_NAMES = frozenset({"span", "trace_span"})


class ObsNamingRule(Rule):
    name = "obs-naming"
    description = (
        "span/metric names must be static lowercase dotted literals; one "
        "name must map to one metric kind across the whole program"
    )

    def __init__(self) -> None:
        # name -> kind -> first location, accumulated for finish().
        self._registrations: Dict[str, Dict[str, Tuple[FileContext, ast.Call]]] = {}

    # ------------------------------------------------------------------
    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        config = ctx.config
        if not config.module_matches(ctx.module, config.obs_modules):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = _registration_kind(node)
            if kind is None:
                continue
            if config.site_allowed(ctx.module, ctx.qualname(node), config.obs_allow):
                continue
            findings.extend(self._check_name(ctx, node, kind))
        return findings

    def _check_name(
        self, ctx: FileContext, node: ast.Call, kind: str
    ) -> Iterable[Finding]:
        name_node = _name_argument(node)
        if name_node is None:
            return
        dynamic_ok = ctx.config.module_matches(
            ctx.module, ctx.config.obs_dynamic_allow
        )
        if isinstance(name_node, ast.Constant) and isinstance(name_node.value, str):
            name = name_node.value
            if not NAME_RE.match(name):
                yield ctx.finding(
                    self.name,
                    node,
                    f"{kind} name {name!r} does not match the naming grammar "
                    "^[a-z][a-z0-9_.]*$",
                )
                return
            if kind in _METRIC_ATTRS:
                self._registrations.setdefault(name, {}).setdefault(
                    kind, (ctx, node)
                )
            return
        if isinstance(name_node, ast.JoinedStr):
            if not dynamic_ok:
                yield ctx.finding(
                    self.name,
                    node,
                    f"{kind} name must be a static string literal, not an "
                    "f-string (dynamic-name modules are allowlisted in the "
                    "config with a justification)",
                )
                return
            skeleton = _fstring_skeleton(name_node)
            if skeleton is not None and not NAME_RE.match(skeleton):
                yield ctx.finding(
                    self.name,
                    node,
                    f"{kind} name f-string's static skeleton {skeleton!r} does "
                    "not match the naming grammar ^[a-z][a-z0-9_.]*$",
                )
            return
        if not dynamic_ok:
            yield ctx.finding(
                self.name,
                node,
                f"{kind} name must be a static string literal so collisions "
                "and grammar can be checked before runtime",
            )

    # ------------------------------------------------------------------
    def finish(self) -> Iterable[Finding]:
        findings: List[Finding] = []
        for name in sorted(self._registrations):
            kinds = self._registrations[name]
            if len(kinds) < 2:
                continue
            ordered = sorted(kinds)
            sites = ", ".join(
                f"{kind} at {kinds[kind][0].path}:{kinds[kind][1].lineno}"
                for kind in ordered
            )
            for kind in ordered[1:]:
                ctx, node = kinds[kind]
                findings.append(
                    ctx.finding(
                        self.name,
                        node,
                        f"metric name {name!r} is registered as more than one "
                        f"kind ({sites}); the runtime registry will raise on "
                        "whichever call site runs second",
                    )
                )
        return findings


def _name_argument(node: ast.Call) -> Optional[ast.expr]:
    """The expression supplying the registered name: the first
    positional argument, or a ``name=`` keyword (every registration
    API here takes the name as its sole ``name`` parameter)."""
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "name":
            return keyword.value
    return None


def _registration_kind(node: ast.Call) -> Optional[str]:
    """``"counter"|"gauge"|"histogram"|"span"`` when the call registers an
    obs name, else ``None``."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in _SPAN_NAMES:
        return "span"
    if isinstance(func, ast.Attribute):
        if func.attr in _METRIC_ATTRS and _is_registry_receiver(func.value):
            return func.attr
        if func.attr == "span" and _is_tracer_receiver(func.value):
            return "span"
    return None


def _is_registry_receiver(node: ast.expr) -> bool:
    """Whether the receiver expression plausibly names a metrics registry."""
    if isinstance(node, ast.Name):
        return "registry" in node.id
    if isinstance(node, ast.Attribute):
        return "registry" in node.attr or _is_registry_receiver(node.value)
    if isinstance(node, ast.Call):
        return _is_registry_receiver(node.func)
    return False


def _is_tracer_receiver(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return "tracer" in node.id or node.id == "obs"
    if isinstance(node, ast.Attribute):
        return "tracer" in node.attr
    return False


def _fstring_skeleton(node: ast.JoinedStr) -> Optional[str]:
    """The f-string with every interpolation replaced by ``x0`` — a
    grammar-conforming placeholder — so the static segments can be
    checked; ``None`` when the name is entirely dynamic."""
    parts: List[str] = []
    saw_static = False
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
            saw_static = True
        else:
            parts.append("x0")
    if not saw_static:
        return None
    return "".join(parts)
