"""Rule ``canonical-json`` — ``json.dumps`` must sort its keys.

Byte-identity across kill/resume, store drivers, executors and the
HTTP API all reduce to one convention: anything serialised in a module
that emits fingerprints, reports or ``--json`` CLI output is written
with ``sort_keys=True``, so the bytes depend only on the *values*,
never on dict construction order.  One un-sorted ``json.dumps`` is
enough to make two honest runs diff — the exact bug class this rule
exists for (``repro insert --json`` shipped without ``sort_keys`` for
nine PRs).

``json.dump`` (the stream variant) is held to the same standard.
Transport encoders (HTTP request bodies) are excluded by module
classification, not per call site.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.lint.core import FileContext, Finding, Rule

_TARGETS = frozenset({"json.dumps", "json.dump"})


class CanonicalJsonRule(Rule):
    name = "canonical-json"
    description = (
        "json.dumps/json.dump without sort_keys=True in modules that emit "
        "fingerprints, reports, or --json CLI output"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        config = ctx.config
        if not config.module_matches(ctx.module, config.canonical_json_modules):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if name not in _TARGETS:
                continue
            if config.site_allowed(
                ctx.module, ctx.qualname(node), config.canonical_json_allow
            ):
                continue
            if not _sorts_keys(node):
                findings.append(
                    ctx.finding(
                        self.name,
                        node,
                        f"{name}() without sort_keys=True in a canonical-output "
                        "module; serialised bytes must not depend on dict "
                        "construction order",
                    )
                )
        return findings


def _sorts_keys(node: ast.Call) -> bool:
    """Whether the call passes ``sort_keys`` truthily (or via ``**kwargs``).

    A ``**kwargs`` splat is given the benefit of the doubt — the rule
    flags provably missing sorting, not dynamically forwarded options.
    """
    for keyword in node.keywords:
        if keyword.arg is None:
            return True
        if keyword.arg == "sort_keys":
            value = keyword.value
            if isinstance(value, ast.Constant):
                return bool(value.value)
            return True  # computed flag: assume the caller knows
    return False
