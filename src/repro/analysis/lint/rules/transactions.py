"""Rule ``transaction-discipline`` — store mutations need a transaction.

The PR 7 pool-publish race is this rule's reason to exist: a domain
layer did a read-check-append against a shared store without the
backend's exclusive critical section, and two racing publishers each
passed the check and appended.  The runtime fix was to move the pair
inside ``backend.transaction()``; this rule makes the convention
static — in the configured domain layers (``campaign.store``,
``campaign.pool``, ``service.queue``), any store-backend mutation
(``append``, ``ingest``, ``replace_all``) must be lexically inside a
``with <backend>.transaction()`` block.

Two shapes are exempt by design rather than by allowlist:

* mutations on the *transaction object itself* (any receiver inside a
  ``with ....transaction()`` block) — that is the sanctioned pattern;
* **thin delegation wrappers**: a method whose entire body is one
  ``self.backend.append(...)`` (optionally returned) merely re-exports
  the backend op, and the discipline belongs to *its* callers — the
  wrapper cannot know whether a check precedes the mutation.

Internally-atomic whole-store rewrites (``merge``'s ``replace_all``)
are allowlisted in the config with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.lint.core import FileContext, Finding, Rule

#: StoreBackend mutation methods the discipline covers.
MUTATORS = frozenset({"append", "ingest", "replace_all"})

#: Receiver name components that identify a store-like object (so the
#: rule does not fire on every ``list.append`` in the module).
STOREY_NAMES = frozenset({"backend", "store", "pool", "queue"})


class TransactionDisciplineRule(Rule):
    name = "transaction-discipline"
    description = (
        "store-backend mutations (append/ingest/replace_all) outside a "
        "backend.transaction() block in domain layers"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        config = ctx.config
        if not config.module_matches(ctx.module, config.transaction_modules):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in MUTATORS:
                continue
            receiver = _receiver_chain(func.value)
            if receiver is None or not _is_storey(receiver):
                continue
            if _inside_transaction(ctx, node):
                continue
            if _is_thin_delegation(ctx, node):
                continue
            if config.site_allowed(
                ctx.module, ctx.qualname(node), config.transaction_allow
            ):
                continue
            findings.append(
                ctx.finding(
                    self.name,
                    node,
                    f"store mutation {'.'.join(receiver)}.{func.attr}() outside "
                    "a backend.transaction() block; read-check-append against "
                    "a shared store races concurrent writers",
                )
            )
        return findings


def _receiver_chain(node: ast.expr) -> Optional[List[str]]:
    """``self.backend`` → ``["self", "backend"]``; None if not a name chain."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return parts


def _is_storey(receiver: List[str]) -> bool:
    """Whether the receiver names a store-like object."""
    return receiver[-1] in STOREY_NAMES or "backend" in receiver


def _inside_transaction(ctx: FileContext, node: ast.AST) -> bool:
    """Whether the node sits lexically inside ``with X.transaction()``."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Transactions do not cross function boundaries lexically.
            return False
        if not isinstance(ancestor, (ast.With, ast.AsyncWith)):
            continue
        for item in ancestor.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr in ("transaction", "lock")
            ):
                return True
    return False


def _is_thin_delegation(ctx: FileContext, node: ast.Call) -> bool:
    """Whether the call is the *entire* body of its enclosing function."""
    function = ctx.enclosing_function(node)
    if function is None:
        return False
    body = list(function.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]  # docstring
    if len(body) != 1:
        return False
    statement = body[0]
    if isinstance(statement, ast.Return):
        return statement.value is node
    if isinstance(statement, ast.Expr):
        return statement.value is node
    return False
