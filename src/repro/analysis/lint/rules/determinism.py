"""Rule ``determinism`` — no nondeterminism in result-bearing code.

Every byte this project promises to reproduce — cell fingerprints,
campaign reports, merged stores, ``--json`` CLI output — flows through
a small set of modules.  Inside them, three classes of calls silently
break bit-identity:

* **wall-clock** (``time.time``, ``datetime.now`` and friends): two
  honest runs of the same cell disagree;
* **ambient randomness** (``random`` module state, ``numpy.random``
  module-level functions, ``uuid``, ``os.urandom``, ``secrets``): the
  project's RNG discipline is explicit seeded generators
  (:func:`repro.utils.rng.ensure_rng`), never process-global state;
* **set iteration**: ``str`` hashing is randomised per process
  (``PYTHONHASHSEED``), so iterating a set — directly, or via
  ``list(set(...))`` — yields a different order in every run.  Wrap in
  ``sorted(...)`` instead.  (Dict iteration is insertion-ordered and is
  therefore not flagged; dict *serialisation* order is the
  ``canonical-json`` rule's job.)

Envelope timestamps (a record's ``completed_unix``, an artifact's
``created_unix``) are intentionally wall-clock; those sites live in the
config allowlist with a justification, not in a baseline.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.lint.core import FileContext, Finding, Rule

#: Wall-clock call targets (fully qualified after import resolution).
WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Entropy sources the explicit-seed discipline forbids.
ENTROPY = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})

#: ``numpy.random`` module-level functions mutate/read global RNG state;
#: the class-style API (``default_rng``, ``Generator``, ``SeedSequence``)
#: is the sanctioned, explicitly-seeded path.
NUMPY_MODULE_STATE = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
    }
)


class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "no wall-clock, ambient RNG state, or set iteration in "
        "fingerprint/report/canonical-serialisation modules"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        config = ctx.config
        if not config.module_matches(ctx.module, config.determinism_modules):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                candidates = self._check_call(ctx, node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                candidates = self._check_iteration(ctx, node.iter)
            else:
                continue
            if not config.site_allowed(
                ctx.module, ctx.qualname(node), config.determinism_allow
            ):
                findings.extend(candidates)
        return findings

    # ------------------------------------------------------------------
    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterable[Finding]:
        name = ctx.resolve(node.func)
        if name is None:
            return
        if name in WALL_CLOCK:
            yield ctx.finding(
                self.name,
                node,
                f"wall-clock call {name}() in a deterministic module; results "
                "must be bit-identical across runs (envelope timestamps belong "
                "in the allowlist)",
            )
        elif name in ENTROPY:
            yield ctx.finding(
                self.name,
                node,
                f"entropy source {name}() in a deterministic module; derive "
                "identifiers from content fingerprints or explicit seeds",
            )
        elif name.startswith("random.") and _root_is_imported(ctx, node.func):
            # resolve() falls back to the bare spelling for local
            # objects, so a variable that merely *is named* `random`
            # must not trip the stdlib-module check.
            yield ctx.finding(
                self.name,
                node,
                f"module-state RNG call {name}() in a deterministic module; "
                "use an explicitly seeded generator (repro.utils.rng.ensure_rng)",
            )
        elif (
            name.startswith("numpy.random.")
            and name.rsplit(".", 1)[1] in NUMPY_MODULE_STATE
        ):
            yield ctx.finding(
                self.name,
                node,
                f"numpy global-state RNG call {name}() in a deterministic "
                "module; use numpy.random.default_rng with an explicit seed",
            )
        elif isinstance(node.func, ast.Name) and node.func.id in ("list", "tuple"):
            if len(node.args) == 1 and _is_set_expr(node.args[0]):
                yield ctx.finding(
                    self.name,
                    node,
                    f"{node.func.id}() over a set has hash-randomised order; "
                    "wrap the set in sorted(...) instead",
                )

    def _check_iteration(
        self, ctx: FileContext, iterable: ast.expr
    ) -> Iterable[Finding]:
        if _is_set_expr(iterable):
            yield ctx.finding(
                self.name,
                iterable,
                "iteration over a set has hash-randomised order; iterate "
                "sorted(...) of it instead",
            )


def _root_is_imported(ctx: FileContext, func: ast.expr) -> bool:
    """Whether the call chain's root name comes from an import statement
    (rather than a local variable/parameter that resolve() echoed back)."""
    node = func
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name) and node.id in ctx.imports


def _is_set_expr(node: ast.expr) -> bool:
    """Whether an expression is statically known to produce a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    # Set algebra on known sets (a | b, a - b ...) stays a set.
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False
