"""Rule ``cli-conventions`` — subcommand handlers behave like exit codes.

The CLI's contract (locked by tests, relied on by CI scripts) is:
``main()`` returns the process exit code, every ``_cmd_*`` handler
returns an ``int``, and usage/parse errors — bad URIs, unreadable
artifacts, malformed specs — exit **2**, reserving 1 for "the command
ran and the verdict is negative" (gate regressions, lint findings).

Statically checkable slices of that contract:

* a handler must be annotated ``-> int`` (the convention is explicit,
  not inferred);
* no handler return may be valueless or ``None`` — ``sys.exit(None)``
  would turn it into exit 0 silently;
* inside a handler's ``except`` blocks, any constant return must be
  ``return 2``: those blocks are exactly where usage errors are
  caught, and returning 0/1 there would collapse error classes CI
  scripts distinguish.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.lint.core import FileContext, Finding, Rule


class CliConventionsRule(Rule):
    name = "cli-conventions"
    description = (
        "CLI subcommand handlers must be annotated -> int, never return "
        "None, and route caught usage errors to exit 2"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        config = ctx.config
        if not config.module_matches(ctx.module, config.cli_modules):
            return []
        prefix = config.cli_handler_prefix
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if not node.name.startswith(prefix):
                continue
            if config.site_allowed(ctx.module, ctx.qualname(node), config.cli_allow):
                continue
            findings.extend(self._check_handler(ctx, node))
        return findings

    # ------------------------------------------------------------------
    def _check_handler(
        self, ctx: FileContext, function: ast.FunctionDef
    ) -> Iterable[Finding]:
        annotation = function.returns
        if not (isinstance(annotation, ast.Name) and annotation.id == "int") and not (
            isinstance(annotation, ast.Constant) and annotation.value == "int"
        ):
            yield ctx.finding(
                self.name,
                function,
                f"subcommand handler {function.name}() must be annotated "
                "'-> int' (it returns the process exit code)",
            )
        for child in _walk_function(function):
            if isinstance(child, ast.Return):
                value = child.value
                if value is None or (
                    isinstance(value, ast.Constant) and value.value is None
                ):
                    yield ctx.finding(
                        self.name,
                        child,
                        f"handler {function.name}() returns None; every return "
                        "must carry an int exit code",
                    )
                elif _inside_except(ctx, child, function) and (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, int)
                    and not isinstance(value.value, bool)
                    and value.value != 2
                ):
                    yield ctx.finding(
                        self.name,
                        child,
                        f"handler {function.name}() returns {value.value} from "
                        "an except block; caught usage/parse errors must exit 2",
                    )


def _walk_function(function: ast.FunctionDef) -> Iterable[ast.AST]:
    """Walk a function's body without descending into nested functions."""
    stack: List[ast.AST] = list(function.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _inside_except(
    ctx: FileContext, node: ast.AST, function: ast.FunctionDef
) -> bool:
    """Whether ``node`` sits inside an except handler of ``function``."""
    for ancestor in ctx.ancestors(node):
        if ancestor is function:
            return False
        if isinstance(ancestor, ast.ExceptHandler):
            return True
    return False
