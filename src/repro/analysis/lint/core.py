"""Core machinery of the invariant linter.

A lint run is: collect ``*.py`` files from the given paths, parse each
into a :class:`FileContext` (AST with parent links, import resolution,
module classification), hand every context to every :class:`Rule`, then
give each rule a cross-file ``finish()`` pass for whole-program checks
(the obs-naming kind-collision check lives there).  Findings are
filtered through inline ``# repro: lint-ok[rule]`` suppressions and an
optional committed baseline, then sorted into a stable
``(path, line, col, rule)`` order.

Design notes:

* Rules are instantiated per run — ``finish()`` state never leaks
  between runs.
* A file that does not parse is a *usage* error (:class:`LintError`,
  CLI exit 2), not a finding: an unparseable tree can hide any number
  of violations, so "0 findings" must never be reported for it.
* Baseline entries identify findings by
  ``rule::path::occurrence::message`` — deliberately line-number-free,
  so unrelated edits above a grandfathered site do not invalidate the
  baseline.  ``occurrence`` is the finding's index among identical
  ``(rule, path, message)`` findings in that file (in line order), so
  grandfathering one violation never silently covers a *new* identical
  violation added to the same file later.
"""

from __future__ import annotations

import ast
import json
import os
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.config import LintConfig


class LintError(ValueError):
    """A lint run cannot proceed (bad path, unparseable file, bad baseline)."""


#: Inline suppression marker: ``# repro: lint-ok[rule]`` or
#: ``# repro: lint-ok[rule-a, rule-b]`` on the flagged line or the line
#: directly above it.
_SUPPRESSION_RE = re.compile(r"#\s*repro:\s*lint-ok\[([a-z0-9_,\s-]+)\]")

#: Version of the ``--json`` findings schema; bump on layout changes.
#: v2: findings carry an ``occurrence`` index and keys include it.
REPORT_SCHEMA_VERSION = 2

#: Version of the baseline-file schema; bump on layout changes.
#: v2: keys gained an occurrence index (``rule::path::occurrence::message``)
#: so one baselined violation cannot grandfather future identical ones.
BASELINE_SCHEMA_VERSION = 2


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``occurrence`` is assigned by the runner: the finding's index among
    identical ``(rule, path, message)`` findings in its file, counted in
    line order over non-suppressed findings.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    occurrence: int = 0

    def key(self) -> str:
        """Line-number-free identity used by baseline files.

        ``occurrence`` sits before the free-form message so every
        machine-generated component stays unambiguous.
        """
        return f"{self.rule}::{self.path}::{self.occurrence}::{self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "occurrence": self.occurrence,
            "key": self.key(),
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


class FileContext:
    """One parsed source file plus everything rules need to reason about it.

    Attributes
    ----------
    path:
        The path findings are reported under (normalised, ``/``-separated).
    module:
        Dotted module name, derived from the package structure on disk
        (``__init__.py`` chains, with a ``src`` layout root recognised);
        a free-standing file is just its stem.  Rules scope themselves
        by matching this against the config's module globs.
    tree:
        The parsed AST; every node carries a ``parent`` backlink (the
        module node's parent is ``None``).
    """

    def __init__(self, path: str, source: str, config: LintConfig) -> None:
        self.path = os.path.normpath(path).replace(os.sep, "/")
        self.source = source
        self.config = config
        self.lines = source.splitlines()
        try:
            self.tree = ast.parse(source)
        except SyntaxError as error:
            raise LintError(
                f"{self.path}:{error.lineno or 0}: cannot parse: {error.msg}"
            ) from None
        self._parents: Dict[ast.AST, Optional[ast.AST]] = {self.tree: None}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node
        self.module = module_name_for(path)
        self.imports = _collect_imports(self.tree)
        self._suppressed = _collect_suppressions(self.lines)

    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """The node's enclosing chain, innermost first."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def qualname(self, node: ast.AST) -> str:
        """Dotted function/class nesting of a node (``""`` at module level)."""
        parts: List[str] = []
        for ancestor in self.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                parts.append(ancestor.name)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            parts.insert(0, node.name)
        return ".".join(reversed(parts))

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor  # type: ignore[return-value]
        return None

    # ------------------------------------------------------------------
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name of a Name/Attribute chain.

        Import aliases are resolved (``import numpy as np`` makes
        ``np.random.seed`` resolve to ``numpy.random.seed``;
        ``from datetime import datetime`` makes ``datetime.now``
        resolve to ``datetime.datetime.now``).  A chain rooted in a
        local object resolves to its literal spelling
        (``self.backend.append``); subscripts/calls in the chain
        resolve to ``None``.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self.imports.get(current.id, current.id)
        parts.append(base)
        return ".".join(reversed(parts))

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether an inline marker suppresses ``rule`` at ``line``."""
        for candidate in (line, line - 1):
            rules = self._suppressed.get(candidate)
            if rules is not None and rule in rules:
                return True
        return False

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


def module_name_for(path: str) -> str:
    """Dotted module name of a file, from its on-disk package chain.

    Walks up while ``__init__.py`` siblings exist (so both ``src``
    layouts and plain packages resolve), then strips a trailing
    ``.__init__``.  A file outside any package is its bare stem.
    """
    absolute = os.path.abspath(path)
    directory, filename = os.path.split(absolute)
    parts = [os.path.splitext(filename)[0]]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        if not package:
            break
        parts.append(package)
    module = ".".join(reversed(parts))
    if module.endswith(".__init__"):
        module = module[: -len(".__init__")]
    return module


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    """Alias → fully-qualified-name map from a module's import statements."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def _collect_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    suppressed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESSION_RE.search(line)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if rules:
            suppressed[lineno] = rules
    return suppressed


# ----------------------------------------------------------------------
# Rule interface
# ----------------------------------------------------------------------
class Rule(ABC):
    """One project invariant, checked per file with an optional
    cross-file ``finish()`` pass.

    Subclasses set ``name`` (the ``--rule``/suppression identifier) and
    ``description`` (one line for ``repro lint --list-rules``), scope
    themselves via the config's module globs, and may accumulate state
    across ``check_file`` calls for ``finish`` — instances live for
    exactly one run.
    """

    name: str = ""
    description: str = ""

    @abstractmethod
    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        """Findings for one parsed file."""

    def finish(self) -> Iterable[Finding]:
        """Whole-program findings after every file has been checked."""
        return ()


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def load_baseline(path: str) -> Set[str]:
    """Finding keys grandfathered by a committed baseline file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise LintError(f"cannot read baseline {path!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise LintError(f"baseline {path!r} is not valid JSON: {error}") from None
    if not isinstance(data, dict):
        raise LintError(f"baseline {path!r} must be a JSON object")
    version = data.get("schema_version")
    if not isinstance(version, int) or version != BASELINE_SCHEMA_VERSION:
        # Older versions used a different key format; accepting them
        # would silently match nothing, so demand a regeneration.
        raise LintError(
            f"baseline {path!r} has unsupported schema_version {version!r} "
            f"(expected {BASELINE_SCHEMA_VERSION}; regenerate with "
            "--write-baseline)"
        )
    findings = data.get("findings")
    if not isinstance(findings, list) or not all(
        isinstance(key, str) for key in findings
    ):
        raise LintError(f"baseline {path!r} needs a 'findings' array of keys")
    return set(findings)


def baseline_payload(findings: Sequence[Finding]) -> Dict[str, object]:
    """A baseline document grandfathering ``findings`` (sorted, deduped)."""
    return {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "findings": sorted({finding.key() for finding in findings}),
    }


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    """What one lint run produced."""

    findings: List[Finding]
    n_files: int
    n_suppressed: int
    n_baselined: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "findings": [finding.as_dict() for finding in self.findings],
            "n_findings": len(self.findings),
            "n_files": self.n_files,
            "n_suppressed": self.n_suppressed,
            "n_baselined": self.n_baselined,
        }


class LintRunner:
    """Drive a set of rules over a set of paths."""

    def __init__(
        self,
        config: Optional[LintConfig] = None,
        rules: Optional[Sequence[Rule]] = None,
        baseline: Optional[Set[str]] = None,
    ) -> None:
        from repro.analysis.lint.rules import build_rules

        self.config = config if config is not None else LintConfig()
        self.rules: List[Rule] = (
            list(rules) if rules is not None else build_rules()
        )
        self.baseline = baseline or set()

    # ------------------------------------------------------------------
    def collect_files(self, paths: Sequence[str]) -> List[str]:
        """Expand files/directories into a sorted, deduplicated file list."""
        files: List[str] = []
        seen: Set[str] = set()
        excluded = set(self.config.exclude_dirs)
        for path in paths:
            if os.path.isfile(path):
                candidates = [path]
            elif os.path.isdir(path):
                candidates = []
                for root, dirnames, filenames in os.walk(path):
                    dirnames[:] = sorted(d for d in dirnames if d not in excluded)
                    for filename in sorted(filenames):
                        if filename.endswith(".py"):
                            candidates.append(os.path.join(root, filename))
            else:
                raise LintError(f"no such file or directory: {path!r}")
            for candidate in candidates:
                normalised = os.path.normpath(candidate)
                if normalised not in seen:
                    seen.add(normalised)
                    files.append(normalised)
        return files

    def run(self, paths: Sequence[str]) -> LintResult:
        files = self.collect_files(paths)
        raw: List[Tuple[Finding, FileContext]] = []
        contexts: Dict[str, FileContext] = {}
        for path in files:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as error:
                raise LintError(f"cannot read {path!r}: {error}") from error
            ctx = FileContext(path, source, self.config)
            contexts[ctx.path] = ctx
            for rule in self.rules:
                for finding in rule.check_file(ctx):
                    raw.append((finding, ctx))
        for rule in self.rules:
            for finding in rule.finish():
                raw.append((finding, contexts[finding.path]))

        kept: List[Finding] = []
        n_suppressed = 0
        for finding, ctx in raw:
            if ctx.is_suppressed(finding.rule, finding.line):
                n_suppressed += 1
                continue
            kept.append(finding)
        # Occurrence indices are assigned over the *non-suppressed*
        # findings in location order, before baseline filtering: a
        # baselined finding still occupies its index, so a new
        # identical violation in the same file gets a fresh key and
        # surfaces instead of riding the grandfathered entry.
        kept.sort()
        counters: Dict[Tuple[str, str, str], int] = {}
        findings: List[Finding] = []
        n_baselined = 0
        for finding in kept:
            group = (finding.rule, finding.path, finding.message)
            index = counters.get(group, 0)
            counters[group] = index + 1
            numbered = replace(finding, occurrence=index)
            if numbered.key() in self.baseline:
                n_baselined += 1
                continue
            findings.append(numbered)
        return LintResult(
            findings=findings,
            n_files=len(files),
            n_suppressed=n_suppressed,
            n_baselined=n_baselined,
        )


def format_findings(result: LintResult) -> str:
    """Human-readable rendering of a lint result."""
    lines = [finding.render() for finding in result.findings]
    summary = (
        f"{len(result.findings)} finding(s) in {result.n_files} file(s)"
    )
    extras = []
    if result.n_suppressed:
        extras.append(f"{result.n_suppressed} suppressed inline")
    if result.n_baselined:
        extras.append(f"{result.n_baselined} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "REPORT_SCHEMA_VERSION",
    "FileContext",
    "Finding",
    "LintError",
    "LintResult",
    "LintRunner",
    "Rule",
    "baseline_payload",
    "format_findings",
    "load_baseline",
    "module_name_for",
]
