"""Configuration for the invariant linter.

Module classification is the heart of every rule: "``json.dumps`` needs
``sort_keys``" is only an invariant in modules that *emit canonical
bytes*, and "no wall-clock" only applies to code whose output must be
bit-identical across runs.  :class:`LintConfig` carries those
classifications as dotted-module glob patterns plus per-rule allowlists
(``module`` or ``module:qualname`` entries) for the cases that are
*intentionally* exempt — each default entry below carries a one-line
justification, which is the project's policy for exemptions (prefer an
allowlist entry with a reason over a baseline line without one).

The defaults encode this repository's own layout so ``repro lint src/``
works out of the box; a ``reprolint.toml`` file (or ``--config PATH``)
overrides any table.  The override file is parsed with :mod:`tomllib`
where available (Python >= 3.11) and with a small built-in parser for
the subset the config needs (tables, strings, booleans, string arrays)
on 3.10 — both paths are tested against the same documents.
"""

from __future__ import annotations

import fnmatch
import os
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple


class LintConfigError(ValueError):
    """A lint configuration file is malformed (a usage error: exit 2)."""


#: Default name of the optional override file, looked up in the CWD.
CONFIG_FILE_NAME = "reprolint.toml"

#: Directory names never descended into when expanding lint paths.
DEFAULT_EXCLUDE_DIRS = (
    ".git",
    "__pycache__",
    ".venv",
    "venv",
    "build",
    "dist",
    ".eggs",
)


@dataclass(frozen=True)
class LintConfig:
    """Module classification and per-rule allowlists for every rule."""

    #: Directory names skipped while collecting ``*.py`` files.
    exclude_dirs: Tuple[str, ...] = DEFAULT_EXCLUDE_DIRS

    # -- determinism ---------------------------------------------------
    #: Modules whose output must be bit-identical across runs
    #: (fingerprints, reports, canonical serialisation, CLI --json).
    determinism_modules: Tuple[str, ...] = (
        "repro.cli",
        "repro.campaign.*",
        "repro.bench.artifact",
        "repro.bench.compare",
        "repro.bench.runner",
        "repro.bench.trend",
        "repro.store.base",
        "repro.store.jsonl",
        "repro.store.sqlite",
        "repro.store.uri",
    )
    #: ``module`` / ``module:qualname`` sites exempt from determinism.
    determinism_allow: Tuple[str, ...] = (
        # completed_unix stamps the record *envelope*, which every
        # byte-identity comparison explicitly excludes.
        "repro.campaign.store:make_record",
        # created_unix stamps the artifact envelope; comparisons and
        # trend fingerprints treat it as run identity, not content.
        "repro.bench.artifact:BenchArtifact.__post_init__",
    )

    # -- canonical-json ------------------------------------------------
    #: Modules whose json.dumps/json.dump output is canonical bytes.
    canonical_json_modules: Tuple[str, ...] = (
        "repro.cli",
        "repro.campaign.*",
        "repro.bench.*",
        "repro.store.*",
        "repro.obs.*",
        # service.client is deliberately absent: its json.dumps encodes
        # HTTP request bodies (transport, parsed by the server), never
        # canonical output bytes.
        "repro.service.api",
        "repro.service.queue",
        "repro.service.worker",
    )
    canonical_json_allow: Tuple[str, ...] = ()

    # -- transaction-discipline ----------------------------------------
    #: Domain layers whose store mutations must run inside
    #: ``backend.transaction()`` (the PR 7 pool-publish race class).
    transaction_modules: Tuple[str, ...] = (
        "repro.campaign.store",
        "repro.campaign.pool",
        "repro.service.queue",
    )
    transaction_allow: Tuple[str, ...] = (
        # merge() writes a brand-new output store in one replace_all,
        # which is internally atomic (temp+rename on jsonl, a single
        # transaction on sqlite) — there is no read-check-append race.
        "repro.campaign.store:CampaignStore.merge",
    )

    # -- obs-naming ----------------------------------------------------
    #: Modules whose span/metric registrations are checked.
    obs_modules: Tuple[str, ...] = ("repro.*",)
    #: Modules allowed to build span/metric names dynamically
    #: (f-strings folding a closed set of dimensions into the name);
    #: static f-string segments are still grammar-checked.
    obs_dynamic_allow: Tuple[str, ...] = (
        # The obs package itself is the API layer: it forwards
        # caller-supplied names, which are checked at the call sites.
        "repro.obs.*",
        # store.<driver>.<op> — driver and op are closed sets baked
        # into the instrumentation wrapper.
        "repro.store.base",
        # service.responses.<status-class> — 2xx/4xx/5xx only.
        "repro.service.api",
        # service.queue.depth.<state> — the four job states.
        "repro.service.queue",
    )
    obs_allow: Tuple[str, ...] = ()

    # -- cli-conventions -----------------------------------------------
    #: Modules containing CLI subcommand handlers.
    cli_modules: Tuple[str, ...] = ("repro.cli",)
    #: Prefix naming a subcommand handler function.
    cli_handler_prefix: str = "_cmd_"
    cli_allow: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    def module_matches(self, module: str, patterns: Sequence[str]) -> bool:
        """Whether a dotted module name matches any classification glob."""
        return any(fnmatch.fnmatchcase(module, pattern) for pattern in patterns)

    def site_allowed(
        self, module: str, qualname: str, allow: Sequence[str]
    ) -> bool:
        """Whether ``module``'s ``qualname`` site is allowlisted.

        An entry is either a whole module (``repro.obs.trace``) or a
        ``module:qualname`` pair; a qualname entry matches the function
        itself and everything nested inside it.
        """
        for entry in allow:
            ent_module, _, ent_qual = entry.partition(":")
            if not fnmatch.fnmatchcase(module, ent_module):
                continue
            if not ent_qual:
                return True
            if qualname == ent_qual or qualname.startswith(ent_qual + "."):
                return True
        return False


# ----------------------------------------------------------------------
# Override-file loading
# ----------------------------------------------------------------------

#: Maps ``[lint.<table>] key`` pairs onto LintConfig field names.
_TABLE_FIELDS: Dict[Tuple[str, str], str] = {
    ("lint", "exclude-dirs"): "exclude_dirs",
    ("lint.determinism", "modules"): "determinism_modules",
    ("lint.determinism", "allow"): "determinism_allow",
    ("lint.canonical-json", "modules"): "canonical_json_modules",
    ("lint.canonical-json", "allow"): "canonical_json_allow",
    ("lint.transaction-discipline", "modules"): "transaction_modules",
    ("lint.transaction-discipline", "allow"): "transaction_allow",
    ("lint.obs-naming", "modules"): "obs_modules",
    ("lint.obs-naming", "dynamic-allow"): "obs_dynamic_allow",
    ("lint.obs-naming", "allow"): "obs_allow",
    ("lint.cli-conventions", "modules"): "cli_modules",
    ("lint.cli-conventions", "handler-prefix"): "cli_handler_prefix",
    ("lint.cli-conventions", "allow"): "cli_allow",
}


def _unknown_entries(data: Dict[str, object]) -> List[str]:
    """Dotted paths of tables/keys the config schema does not define.

    A typo (``[lint.determinsm]``, ``module`` for ``modules``) must be
    a hard error, not a silent fall-back to the built-in defaults.
    """
    known_keys: Dict[str, set] = {}
    for table_name, key in _TABLE_FIELDS:
        known_keys.setdefault(table_name, set()).add(key)
    known_subtables = {
        name.split(".", 1)[1] for name in known_keys if name.startswith("lint.")
    }
    unknown: List[str] = []
    for top, value in data.items():
        if top != "lint":
            unknown.append(top)
            continue
        if not isinstance(value, dict):
            unknown.append("lint")
            continue
        for key, sub in value.items():
            if key in known_keys["lint"]:
                continue
            if key not in known_subtables or not isinstance(sub, dict):
                unknown.append(f"lint.{key}")
                continue
            for inner in sub:
                if inner not in known_keys[f"lint.{key}"]:
                    unknown.append(f"lint.{key}.{inner}")
    return unknown


def config_from_mapping(data: Dict[str, object]) -> LintConfig:
    """Build a config from a parsed TOML document (defaults + overrides)."""
    unknown = _unknown_entries(data)
    if unknown:
        raise LintConfigError(
            "unrecognized lint config entr{} {}".format(
                "y" if len(unknown) == 1 else "ies",
                ", ".join(sorted(unknown)),
            )
        )
    updates: Dict[str, object] = {}
    for (table_name, key), field_name in _TABLE_FIELDS.items():
        table: object = data
        for part in table_name.split("."):
            if not isinstance(table, dict):
                table = None
                break
            table = table.get(part)
        if not isinstance(table, dict) or key not in table:
            continue
        value = table[key]
        wants_str = field_name == "cli_handler_prefix"
        if wants_str:
            if not isinstance(value, str):
                raise LintConfigError(
                    f"[{table_name}] {key} must be a string, got {value!r}"
                )
            updates[field_name] = value
        else:
            if not isinstance(value, list) or not all(
                isinstance(item, str) for item in value
            ):
                raise LintConfigError(
                    f"[{table_name}] {key} must be an array of strings, got {value!r}"
                )
            updates[field_name] = tuple(value)
    known = {f.name for f in fields(LintConfig)}
    assert set(updates) <= known
    return replace(LintConfig(), **updates)


def load_config(path: Optional[str] = None) -> LintConfig:
    """Load the lint config for a run.

    With an explicit ``path`` the file must exist; without one,
    ``reprolint.toml`` in the CWD is used when present, the built-in
    defaults otherwise.
    """
    if path is None:
        if os.path.exists(CONFIG_FILE_NAME):
            path = CONFIG_FILE_NAME
        else:
            return LintConfig()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise LintConfigError(f"cannot read lint config {path!r}: {error}") from error
    try:
        data = parse_toml(text)
    except LintConfigError as error:
        raise LintConfigError(f"lint config {path!r}: {error}") from None
    return config_from_mapping(data)


# ----------------------------------------------------------------------
# TOML parsing (tomllib when available, built-in subset parser on 3.10)
# ----------------------------------------------------------------------
def parse_toml(text: str) -> Dict[str, object]:
    """Parse a TOML document into nested dicts."""
    try:
        import tomllib
    except ImportError:  # Python 3.10
        return parse_toml_subset(text)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise LintConfigError(f"invalid TOML: {error}") from None


def parse_toml_subset(text: str) -> Dict[str, object]:
    """Minimal TOML parser for lint-config documents.

    Supports ``[dotted.table]`` headers, ``key = value`` assignments
    with string / boolean / integer / string-array values (arrays may
    span lines), and ``#`` comments.  Anything else raises
    :class:`LintConfigError` — the config format is deliberately small.
    """
    root: Dict[str, object] = {}
    table = root
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = _strip_comment(lines[index])
        index += 1
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            table = root
            for part in line[1:-1].strip().split("."):
                part = part.strip()
                if not part:
                    raise LintConfigError(f"malformed table header {line!r}")
                table = table.setdefault(part, {})  # type: ignore[assignment]
                if not isinstance(table, dict):
                    raise LintConfigError(f"table {part!r} collides with a value")
            continue
        if "=" not in line:
            raise LintConfigError(f"expected 'key = value', got {line!r}")
        key, _, raw = line.partition("=")
        key = key.strip().strip('"')
        raw = raw.strip()
        if raw.startswith("[") and not _array_closed(raw):
            # Multi-line array: accumulate until the bracket closes.
            while index < len(lines):
                raw += " " + _strip_comment(lines[index])
                index += 1
                if _array_closed(raw.strip()):
                    break
            raw = raw.strip()
        table[key] = _parse_value(raw)
    return root


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment (quote-aware) and surrounding whitespace."""
    out = []
    in_string = False
    for char in line:
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            break
        out.append(char)
    return "".join(out).strip()


def _array_closed(raw: str) -> bool:
    """Whether an array literal's brackets balance outside strings."""
    depth = 0
    in_string = False
    for char in raw:
        if char == '"':
            in_string = not in_string
        elif not in_string:
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
    return depth == 0 and not in_string


def _parse_value(raw: str) -> object:
    if raw.startswith("[") and raw.endswith("]"):
        body = raw[1:-1].strip()
        if not body:
            return []
        items: List[object] = []
        for piece in _split_array_items(body):
            items.append(_parse_value(piece))
        return items
    if raw.startswith('"') and raw.endswith('"') and len(raw) >= 2:
        return raw[1:-1]
    if raw in ("true", "false"):
        return raw == "true"
    try:
        return int(raw)
    except ValueError:
        raise LintConfigError(f"unsupported TOML value {raw!r}") from None


def _split_array_items(body: str) -> List[str]:
    items: List[str] = []
    current: List[str] = []
    in_string = False
    for char in body:
        if char == '"':
            in_string = not in_string
            current.append(char)
        elif char == "," and not in_string:
            piece = "".join(current).strip()
            if piece:
                items.append(piece)
            current = []
        else:
            current.append(char)
    piece = "".join(current).strip()
    if piece:
        items.append(piece)
    return items


__all__ = [
    "CONFIG_FILE_NAME",
    "LintConfig",
    "LintConfigError",
    "config_from_mapping",
    "load_config",
    "parse_toml",
    "parse_toml_subset",
]
