"""``repro lint`` — an AST-based linter for the repo's own invariants.

Every guarantee this reproduction ships — bit-identical flow results
across executors, byte-identical campaign reports across kill/resume
and store drivers, exactly-one lease per job — is an *invariant*, and
until this package existed each one was enforced only at runtime by
tests that had to think to exercise the right interleaving.  The
linter turns the conventions behind those guarantees into static
checks over the project's own AST:

``determinism``
    No wall-clock, ambient RNG state, or set iteration in modules that
    emit fingerprints, reports, or canonical serialisations.
``canonical-json``
    ``json.dumps`` in those modules must pass ``sort_keys=True``.
``transaction-discipline``
    Store mutations in domain layers must sit inside
    ``backend.transaction()`` (the PR 7 pool-publish race class).
``obs-naming``
    Span/metric names are static lowercase dotted literals, and one
    name is one metric kind across the whole program.
``cli-conventions``
    Subcommand handlers return ``int`` and route usage errors to
    exit 2.

Findings honour inline ``# repro: lint-ok[rule]`` suppressions and an
optional committed baseline; module classification and allowlists are
config-driven (:mod:`repro.analysis.lint.config`).  The linter
self-hosts: ``repro lint src/`` runs clean in CI next to ruff.
"""

from repro.analysis.lint.config import (
    CONFIG_FILE_NAME,
    LintConfig,
    LintConfigError,
    load_config,
    parse_toml,
    parse_toml_subset,
)
from repro.analysis.lint.core import (
    FileContext,
    Finding,
    LintError,
    LintResult,
    LintRunner,
    Rule,
    baseline_payload,
    format_findings,
    load_baseline,
    module_name_for,
)
from repro.analysis.lint.rules import RULE_NAMES, RULE_REGISTRY, build_rules

__all__ = [
    "CONFIG_FILE_NAME",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintConfigError",
    "LintError",
    "LintResult",
    "LintRunner",
    "RULE_NAMES",
    "RULE_REGISTRY",
    "Rule",
    "baseline_payload",
    "build_rules",
    "format_findings",
    "load_baseline",
    "load_config",
    "module_name_for",
    "parse_toml",
    "parse_toml_subset",
]
