"""Tuning-value histograms (paper Fig. 5).

Figure 5 of the paper illustrates how the tuning values of a single buffer
across all samples (a) start out scattered, (b) concentrate around zero
after the step-1 objective, and (c) concentrate around the average inside
the reduced range after step 2.  :func:`tuning_histogram` produces those
histograms from the flow artefacts so the benchmark harness (and the
examples) can print/plot them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class TuningHistogram:
    """Histogram of one buffer's tuning values across samples.

    Attributes
    ----------
    flip_flop:
        Buffer / flip-flop name.
    bin_edges:
        Histogram bin edges (length ``len(counts) + 1``).
    counts:
        Number of samples per bin.
    mean / std / spread:
        Summary statistics of the underlying values (spread = max - min).
    """

    flip_flop: str
    bin_edges: np.ndarray
    counts: np.ndarray
    mean: float
    std: float
    spread: float

    @property
    def n_values(self) -> int:
        """Total number of observed tunings."""
        return int(np.sum(self.counts))

    def as_text(self, width: int = 40) -> str:
        """ASCII rendering of the histogram (for console reports)."""
        lines = [f"buffer {self.flip_flop}: {self.n_values} tunings, spread {self.spread:.2f}"]
        peak = max(1, int(np.max(self.counts))) if self.counts.size else 1
        for left, right, count in zip(self.bin_edges[:-1], self.bin_edges[1:], self.counts, strict=True):
            bar = "#" * int(round(width * count / peak))
            lines.append(f"  [{left:+7.2f}, {right:+7.2f}) {int(count):5d} {bar}")
        return "\n".join(lines)


def tuning_histogram(
    flip_flop: str,
    values: Sequence[float],
    bin_width: float = 1.0,
    value_range: Optional[tuple] = None,
) -> TuningHistogram:
    """Histogram the tuning values of one buffer.

    Parameters
    ----------
    values:
        Observed (non-zero) tuning values across samples.
    bin_width:
        Width of one histogram bin (use the tuning step for Fig.-5-style
        plots).
    value_range:
        Optional ``(low, high)`` range; defaults to the data range.
    """
    values = np.asarray(list(values), dtype=float)
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if values.size == 0:
        edges = np.array([-bin_width / 2, bin_width / 2])
        return TuningHistogram(flip_flop, edges, np.zeros(1, dtype=int), 0.0, 0.0, 0.0)
    low, high = value_range if value_range is not None else (values.min(), values.max())
    low = np.floor(low / bin_width) * bin_width
    high = np.ceil(high / bin_width) * bin_width + bin_width
    edges = np.arange(low, high + bin_width / 2, bin_width)
    counts, edges = np.histogram(values, bins=edges)
    return TuningHistogram(
        flip_flop=flip_flop,
        bin_edges=edges,
        counts=counts,
        mean=float(values.mean()),
        std=float(values.std()),
        spread=float(values.max() - values.min()),
    )


def histograms_from_artifacts(
    tuning_values: Dict[str, np.ndarray],
    bin_width: float = 1.0,
    top_k: Optional[int] = None,
) -> Dict[str, TuningHistogram]:
    """Histograms of the ``top_k`` most-used buffers of a flow step."""
    items = sorted(tuning_values.items(), key=lambda kv: len(kv[1]), reverse=True)
    if top_k is not None:
        items = items[:top_k]
    return {ff: tuning_histogram(ff, values, bin_width=bin_width) for ff, values in items}
