"""Table-I style reporting.

The paper's single results table lists, per circuit and per target period
(``mu_T``, ``mu_T + sigma_T``, ``mu_T + 2 sigma_T``): the number of
inserted buffers ``Nb``, their average range ``Ab`` (in steps), the yield
``Y`` with buffers, the improvement ``Yi = Y - Yo`` and the runtime
``T (s)``.  :class:`TableOneRow` captures one (circuit, target) cell and
the formatters render the same layout as the paper, which is what the
benchmark harness prints and what ``EXPERIMENTS.md`` records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.results import FlowResult


@dataclass(frozen=True)
class TableOneRow:
    """One (circuit, target period) entry of the Table-I reproduction.

    Attributes
    ----------
    circuit:
        Benchmark name.
    n_flip_flops / n_gates:
        Circuit size (the paper's ``ns`` and ``ng``).
    target_sigma:
        0, 1 or 2 — the target period is ``mu_T + target_sigma * sigma_T``.
    n_buffers / avg_range / tuned_yield / original_yield / runtime_s:
        The paper's ``Nb``, ``Ab``, ``Y``, ``Yo`` and ``T (s)``.
        ``runtime_s`` may be ``None``, in which case the formatters render
        ``-`` — campaign reports omit wall-clock so that resumed and
        uninterrupted runs produce bit-identical output.
    """

    circuit: str
    n_flip_flops: int
    n_gates: int
    target_sigma: float
    n_buffers: int
    avg_range: float
    tuned_yield: float
    original_yield: float
    runtime_s: Optional[float]

    @property
    def yield_improvement(self) -> float:
        """``Yi = Y - Yo`` in percent points (0-1 scale)."""
        return self.tuned_yield - self.original_yield

    @classmethod
    def from_flow_result(
        cls,
        circuit: str,
        n_flip_flops: int,
        n_gates: int,
        target_sigma: float,
        result: FlowResult,
        runtime_s: Optional[float] = None,
    ) -> "TableOneRow":
        """Build a row from a finished flow result."""
        return cls(
            circuit=circuit,
            n_flip_flops=n_flip_flops,
            n_gates=n_gates,
            target_sigma=target_sigma,
            n_buffers=result.plan.n_buffers,
            avg_range=result.plan.average_range_steps,
            tuned_yield=result.improved_yield,
            original_yield=result.original_yield,
            runtime_s=result.total_runtime if runtime_s is None else runtime_s,
        )


_HEADER = (
    f"{'circuit':<14}{'ns':>7}{'ng':>8}{'target':>10}{'Nb':>5}{'Ab':>7}"
    f"{'Y(%)':>8}{'Yi(%)':>8}{'T(s)':>9}"
)


def _runtime_label(runtime_s: Optional[float]) -> str:
    return "-" if runtime_s is None else f"{runtime_s:.2f}"


def _sigma_label(sigma: float) -> str:
    if abs(sigma) < 1e-9:
        return "muT"
    if abs(sigma - 1.0) < 1e-9:
        return "muT+1s"
    if abs(sigma - 2.0) < 1e-9:
        return "muT+2s"
    return f"muT+{sigma:g}s"


def format_table_one(rows: Iterable[TableOneRow]) -> str:
    """Render rows in the paper's Table-I layout (plain text)."""
    lines = [_HEADER, "-" * len(_HEADER)]
    for row in rows:
        lines.append(
            f"{row.circuit:<14}{row.n_flip_flops:>7}{row.n_gates:>8}"
            f"{_sigma_label(row.target_sigma):>10}{row.n_buffers:>5}"
            f"{row.avg_range:>7.2f}{100 * row.tuned_yield:>8.2f}"
            f"{100 * row.yield_improvement:>8.2f}{_runtime_label(row.runtime_s):>9}"
        )
    return "\n".join(lines)


def rows_to_markdown(rows: Iterable[TableOneRow]) -> str:
    """Render rows as a Markdown table (used for ``EXPERIMENTS.md``)."""
    lines = [
        "| circuit | ns | ng | target | Nb | Ab | Y (%) | Yi (%) | T (s) |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row.circuit} | {row.n_flip_flops} | {row.n_gates} | "
            f"{_sigma_label(row.target_sigma)} | {row.n_buffers} | {row.avg_range:.2f} | "
            f"{100 * row.tuned_yield:.2f} | {100 * row.yield_improvement:.2f} | "
            f"{_runtime_label(row.runtime_s)} |"
        )
    return "\n".join(lines)


def paper_table_one() -> List[Dict[str, float]]:
    """The paper's reported Table-I numbers (for side-by-side comparison).

    Values are copied verbatim from the paper; yields are fractions.
    """
    data = [
        # circuit, ns, ng, sigma, Nb, Ab, Y, Yi, T(s)
        ("s9234", 211, 5597, 0, 2, 12.50, 0.7711, 0.2711, 54.22),
        ("s9234", 211, 5597, 1, 2, 12.00, 0.9594, 0.1181, 47.11),
        ("s9234", 211, 5597, 2, 2, 11.00, 0.9918, 0.0146, 7.79),
        ("s13207", 638, 7951, 0, 5, 9.80, 0.7237, 0.2237, 156.05),
        ("s13207", 638, 7951, 1, 5, 14.20, 0.9642, 0.1229, 92.84),
        ("s13207", 638, 7951, 2, 6, 17.30, 0.9953, 0.0181, 24.16),
        ("s15850", 534, 9772, 0, 5, 19.80, 0.6934, 0.1934, 223.09),
        ("s15850", 534, 9772, 1, 5, 19.40, 0.9433, 0.1020, 90.89),
        ("s15850", 534, 9772, 2, 5, 15.20, 0.9912, 0.0140, 23.42),
        ("s38584", 1426, 19253, 0, 11, 9.74, 0.8597, 0.3597, 1800.14),
        ("s38584", 1426, 19253, 1, 7, 13.14, 0.9848, 0.1435, 683.62),
        ("s38584", 1426, 19253, 2, 7, 13.57, 0.9894, 0.0122, 223.95),
        ("mem_ctrl", 1065, 10327, 0, 10, 11.90, 0.6711, 0.1711, 1206.54),
        ("mem_ctrl", 1065, 10327, 1, 10, 11.70, 0.9458, 0.1045, 531.78),
        ("mem_ctrl", 1065, 10327, 2, 10, 8.70, 0.9891, 0.0119, 147.89),
        ("usb_funct", 1746, 14381, 0, 17, 17.18, 0.7177, 0.2177, 2202.69),
        ("usb_funct", 1746, 14381, 1, 17, 16.82, 0.9657, 0.1244, 670.63),
        ("usb_funct", 1746, 14381, 2, 9, 4.00, 0.9873, 0.0101, 145.77),
        ("ac97_ctrl", 2199, 9208, 0, 21, 15.10, 0.7505, 0.2505, 2225.54),
        ("ac97_ctrl", 2199, 9208, 1, 21, 15.43, 0.9492, 0.1079, 800.31),
        ("ac97_ctrl", 2199, 9208, 2, 8, 13.00, 0.9773, 0.0001, 111.38),
        ("pci_bridge32", 3321, 12494, 0, 32, 13.84, 0.7366, 0.2366, 5124.25),
        ("pci_bridge32", 3321, 12494, 1, 32, 9.41, 0.9676, 0.1263, 2594.26),
        ("pci_bridge32", 3321, 12494, 2, 8, 9.50, 0.9867, 0.0095, 586.74),
    ]
    keys = (
        "circuit",
        "n_flip_flops",
        "n_gates",
        "target_sigma",
        "n_buffers",
        "avg_range",
        "tuned_yield",
        "yield_improvement",
        "runtime_s",
    )
    return [dict(zip(keys, row, strict=True)) for row in data]
