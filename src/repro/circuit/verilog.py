"""Structural Verilog reader / writer (gate-level subset).

The TAU-2013 benchmark circuits the paper uses are distributed as
gate-level structural Verilog.  This module supports the subset needed for
such netlists::

    module top (a, b, q);
      input a, b;
      output q;
      wire n1, n2;
      NAND2 u1 (.A(a), .B(b), .Y(n1));
      INV   u2 (.A(n1), .Y(n2));
      DFF   r1 (.D(n2), .Q(q));
    endmodule

Conventions of the subset:

* one module per file, instances use named port connections;
* every cell has exactly one output pin named ``Y``, ``Q``, ``Z`` or
  ``OUT``; all other pins are inputs;
* flip-flops are cells of the library whose kind is ``FLIP_FLOP`` (clock
  pins, if present, are ignored — the clock network is implicit, as in the
  rest of the library).

The writer emits netlists that round-trip through the reader.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.circuit.library import CellLibrary, default_library
from repro.circuit.netlist import Netlist

_OUTPUT_PINS = ("Y", "Q", "Z", "OUT")
_CLOCK_PINS = ("CLK", "CK", "CLOCK")

_MODULE_RE = re.compile(r"module\s+(?P<name>\w+)\s*\((?P<ports>[^)]*)\)\s*;", re.DOTALL)
_DECL_RE = re.compile(r"^(input|output|wire)\s+(?P<names>[^;]+);$")
_INSTANCE_RE = re.compile(
    r"^(?P<cell>\w+)\s+(?P<inst>[\w\.\[\]\$]+)\s*\((?P<conns>.*)\)\s*;$", re.DOTALL
)
_PIN_RE = re.compile(r"\.(?P<pin>\w+)\s*\(\s*(?P<net>[\w\.\[\]\$]+)\s*\)")


class VerilogParseError(ValueError):
    """Raised when a structural Verilog file cannot be parsed."""


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return text


def _statements(text: str) -> List[str]:
    """Split module body text into ``;``-terminated statements."""
    return [s.strip() + ";" for s in text.split(";") if s.strip()]


def parse_verilog(
    text: str,
    library: Optional[CellLibrary] = None,
    name: Optional[str] = None,
) -> Netlist:
    """Parse gate-level structural Verilog into a :class:`Netlist`."""
    library = library or default_library()
    text = _strip_comments(text)
    module = _MODULE_RE.search(text)
    if module is None:
        raise VerilogParseError("no module declaration found")
    module_name = name or module.group("name")
    body = text[module.end():]
    end = body.find("endmodule")
    if end < 0:
        raise VerilogParseError("missing endmodule")
    body = body[:end]

    inputs: List[str] = []
    outputs: List[str] = []
    instances: List[Tuple[str, str, Dict[str, str]]] = []

    for statement in _statements(body):
        statement = " ".join(statement.split())
        declaration = _DECL_RE.match(statement)
        if declaration:
            kind = declaration.group(1)
            names = [n.strip() for n in declaration.group("names").split(",") if n.strip()]
            if kind == "input":
                inputs.extend(names)
            elif kind == "output":
                outputs.extend(names)
            continue
        instance = _INSTANCE_RE.match(statement)
        if instance:
            cell = instance.group("cell")
            inst_name = instance.group("inst")
            pins = {m.group("pin").upper(): m.group("net") for m in _PIN_RE.finditer(instance.group("conns"))}
            if not pins:
                raise VerilogParseError(
                    f"instance {inst_name!r}: only named port connections are supported"
                )
            instances.append((cell, inst_name, pins))
            continue
        raise VerilogParseError(f"cannot parse statement: {statement!r}")

    netlist = Netlist(name=module_name)
    clock_nets = set()
    # First pass: outputs of instances define signals named after the driven net.
    driver_of: Dict[str, Tuple[str, str, Dict[str, str]]] = {}
    for cell, inst_name, pins in instances:
        output_pin = next((p for p in _OUTPUT_PINS if p in pins), None)
        if output_pin is None:
            raise VerilogParseError(f"instance {inst_name!r} has no recognised output pin")
        driver_of[pins[output_pin]] = (cell, inst_name, pins)

    for pi in inputs:
        if pi not in driver_of:
            netlist.add_primary_input(pi)

    # Create instances named after their output nets (the library convention).
    for net, (cell_name, inst_name, pins) in driver_of.items():
        if cell_name not in library:
            raise VerilogParseError(f"unknown cell {cell_name!r} in instance {inst_name!r}")
        cell = library.get(cell_name)
        fanins = [
            value
            for pin, value in pins.items()
            if pin not in _OUTPUT_PINS and pin not in _CLOCK_PINS
        ]
        for pin in pins:
            if pin in _CLOCK_PINS:
                clock_nets.add(pins[pin])
        if cell.is_sequential:
            netlist.add_flip_flop(net, cell=cell_name, data_input=fanins[0] if fanins else None)
        else:
            netlist.add_gate(net, cell=cell_name, fanins=fanins)

    for po in outputs:
        netlist.add_primary_output(f"{po}__po", driver=po)

    netlist.validate(library=library)
    return netlist


def load_verilog(path: Union[str, Path], library: Optional[CellLibrary] = None) -> Netlist:
    """Read a structural Verilog file from disk."""
    path = Path(path)
    return parse_verilog(path.read_text(), library=library, name=path.stem)


def write_verilog(netlist: Netlist, library: Optional[CellLibrary] = None) -> str:
    """Serialise a netlist to the structural-Verilog subset."""
    library = library or default_library()
    inputs = netlist.primary_inputs
    output_wrappers = netlist.primary_outputs
    output_nets = []
    for po in output_wrappers:
        inst = netlist.instance(po)
        output_nets.append(inst.fanins[0] if inst.fanins else po)

    ports = inputs + output_nets
    lines = [f"module {netlist.name} ({', '.join(ports)});"]
    if inputs:
        lines.append(f"  input {', '.join(inputs)};")
    if output_nets:
        lines.append(f"  output {', '.join(output_nets)};")
    wires = [
        name
        for name in list(netlist.gates) + list(netlist.flip_flops)
        if name not in output_nets
    ]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")

    counter = 0
    for name in list(netlist.flip_flops) + list(netlist.gates):
        inst = netlist.instance(name)
        cell = library.get(inst.cell)
        counter += 1
        if inst.is_flip_flop:
            pins = [f".D({inst.fanins[0]})", f".Q({name})"]
        else:
            pin_names = [f"A{i}" if cell.n_inputs > 1 else "A" for i in range(1, len(inst.fanins) + 1)]
            pins = [f".{pin}({net})" for pin, net in zip(pin_names, inst.fanins, strict=True)]
            pins.append(f".Y({name})")
        lines.append(f"  {inst.cell} u{counter} ({', '.join(pins)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def save_verilog(netlist: Netlist, path: Union[str, Path], library: Optional[CellLibrary] = None) -> None:
    """Write a netlist to a structural Verilog file."""
    Path(path).write_text(write_verilog(netlist, library=library))
