"""The Table-I benchmark suite.

The paper evaluates eight circuits: four from ISCAS89 (``s9234``,
``s13207``, ``s15850``, ``s38584``) and four from the TAU 2013
variation-aware timing contest (``mem_ctrl``, ``usb_funct``, ``ac97_ctrl``,
``pci_bridge32``).  The original mapped netlists (industrial library) are
not redistributable, so each suite entry is *synthesised* with the same
flip-flop count ``ns`` and gate count ``ng`` as reported in Table I, a
clustered topology and injected static clock skew (the paper also adds
skews "so that they have more critical paths").

Because the reproduction runs on a pure-Python stack, every entry accepts a
``scale`` factor that shrinks ``ns``/``ng`` proportionally; benchmarks use
scaled versions by default and the full sizes with ``scale=1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.circuit.design import CircuitDesign
from repro.circuit.generators import GeneratorConfig, generate_sequential_circuit
from repro.circuit.library import CellLibrary, default_library
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class SuiteCircuitSpec:
    """Size and topology parameters of one Table-I circuit.

    Attributes
    ----------
    name:
        Benchmark name as used in the paper.
    n_flip_flops, n_gates:
        ``ns`` and ``ng`` from Table I.
    source:
        Benchmark family (``"iscas89"`` or ``"tau2013"``).
    max_depth:
        Maximum register-to-register logic depth used by the generator.
    clock_skew_fraction:
        Static clock-skew half-width as a fraction of the nominal critical
        stage delay.
    """

    name: str
    n_flip_flops: int
    n_gates: int
    source: str
    max_depth: int = 12
    clock_skew_fraction: float = 0.15


#: Table I circuit sizes (ns, ng) straight from the paper.
CIRCUIT_SPECS: Dict[str, SuiteCircuitSpec] = {
    spec.name: spec
    for spec in (
        SuiteCircuitSpec("s9234", 211, 5597, "iscas89", max_depth=12),
        SuiteCircuitSpec("s13207", 638, 7951, "iscas89", max_depth=14),
        SuiteCircuitSpec("s15850", 534, 9772, "iscas89", max_depth=16),
        SuiteCircuitSpec("s38584", 1426, 19253, "iscas89", max_depth=14),
        SuiteCircuitSpec("mem_ctrl", 1065, 10327, "tau2013", max_depth=12),
        SuiteCircuitSpec("usb_funct", 1746, 14381, "tau2013", max_depth=12),
        SuiteCircuitSpec("ac97_ctrl", 2199, 9208, "tau2013", max_depth=10),
        SuiteCircuitSpec("pci_bridge32", 3321, 12494, "tau2013", max_depth=10),
    )
}


def list_suite_circuits() -> List[str]:
    """Names of the available suite circuits (paper Table I order)."""
    return list(CIRCUIT_SPECS.keys())


def build_suite_circuit(
    name: str,
    scale: float = 1.0,
    seed: RngLike = 0,
    library: Optional[CellLibrary] = None,
    grid_rows: int = 4,
    grid_cols: int = 4,
) -> CircuitDesign:
    """Build one suite circuit as a :class:`~repro.circuit.design.CircuitDesign`.

    Parameters
    ----------
    name:
        One of :func:`list_suite_circuits`.
    scale:
        Size factor applied to both the flip-flop and gate count
        (``scale=1.0`` reproduces the paper's circuit sizes; smaller values
        produce structurally similar but faster-to-process circuits).
    seed:
        Seed for the netlist generator, placement and clock skews.
    """
    if name not in CIRCUIT_SPECS:
        raise KeyError(
            f"unknown suite circuit {name!r}; available: {list_suite_circuits()}"
        )
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    spec = CIRCUIT_SPECS[name]
    generator = ensure_rng(seed)
    library = library or default_library()

    n_ffs = max(8, int(round(spec.n_flip_flops * scale)))
    n_gates = max(4 * n_ffs, int(round(spec.n_gates * scale)))
    config = GeneratorConfig(
        n_flip_flops=n_ffs,
        n_gates=n_gates,
        max_depth=spec.max_depth,
        min_depth=max(2, spec.max_depth // 4),
    )
    netlist = generate_sequential_circuit(
        config, library=library, rng=generator, name=name if scale == 1.0 else f"{name}_x{scale:g}"
    )

    design = CircuitDesign.from_netlist(
        netlist,
        library=library,
        clock_skew_magnitude=0.0,
        grid_rows=grid_rows,
        grid_cols=grid_cols,
        rng=generator,
    )

    # Clock skews are added as in the paper ("so that they have more critical
    # paths"), but hold-aware: the skew magnitude is a fraction of the nominal
    # stage delay, projected onto the feasible region of the hold constraints.
    # The constraint graph built for this purpose is cached on the design so
    # downstream consumers (flow, yield analysis, benchmarks) reuse it.
    from repro.timing.constraints import extract_constraint_graph
    from repro.timing.skew import apply_skews, hold_aware_random_skews

    constraint_graph = extract_constraint_graph(design)
    nominal_stage_delay = 2.0 * spec.max_depth
    skew_magnitude = spec.clock_skew_fraction * nominal_stage_delay
    skews = hold_aware_random_skews(constraint_graph, skew_magnitude, rng=generator)
    apply_skews(constraint_graph, skews)
    design.cached_constraint_graph = constraint_graph
    return design


def suggested_scale(name: str, target_flip_flops: int = 120) -> float:
    """Scale factor that shrinks circuit ``name`` to roughly ``target_flip_flops``.

    Used by the benchmark harnesses so that every Table-I circuit can be run
    in a reasonable time on the pure-Python stack while preserving the
    relative size ordering of the suite.
    """
    spec = CIRCUIT_SPECS[name]
    if spec.n_flip_flops <= target_flip_flops:
        return 1.0
    return min(1.0, target_flip_flops / spec.n_flip_flops)
