"""Gate-level circuit substrate.

This subpackage provides everything the insertion flow needs to know about
a design:

* :mod:`repro.circuit.cells` / :mod:`repro.circuit.library` — combinational
  and sequential cell definitions with nominal timing,
* :mod:`repro.circuit.netlist` — the gate-level netlist data model,
* :mod:`repro.circuit.bench` — ISCAS89 ``.bench`` reader / writer,
* :mod:`repro.circuit.generators` — synthetic sequential-circuit generators
  used to stand in for the paper's industrial-library-mapped benchmarks,
* :mod:`repro.circuit.placement` — cell placement and flip-flop pitch,
* :mod:`repro.circuit.clockskew` — static clock-skew injection,
* :mod:`repro.circuit.design` — the :class:`CircuitDesign` bundle consumed
  by timing analysis and the insertion flow,
* :mod:`repro.circuit.suite` — the eight Table-I benchmark circuits.
"""

from repro.circuit.cells import Cell, CellKind, FlipFlopTiming
from repro.circuit.design import CircuitDesign
from repro.circuit.library import CellLibrary, default_library
from repro.circuit.netlist import Instance, InstanceKind, Netlist
from repro.circuit.placement import Placement, grid_placement
from repro.circuit.suite import CIRCUIT_SPECS, build_suite_circuit, list_suite_circuits

__all__ = [
    "Cell",
    "CellKind",
    "FlipFlopTiming",
    "CellLibrary",
    "default_library",
    "Instance",
    "InstanceKind",
    "Netlist",
    "Placement",
    "grid_placement",
    "CircuitDesign",
    "CIRCUIT_SPECS",
    "build_suite_circuit",
    "list_suite_circuits",
]
