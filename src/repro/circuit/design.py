"""The :class:`CircuitDesign` bundle.

Timing analysis and the buffer-insertion flow need more than a netlist:
they also need the cell library, the placement (for buffer grouping and
spatial variation), the static clock skews and the variation model.
:class:`CircuitDesign` groups these into a single object with a convenience
factory that fills in sensible defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.circuit.clockskew import ClockSkewMap, random_clock_skews
from repro.circuit.library import CellLibrary, default_library
from repro.circuit.netlist import Netlist
from repro.circuit.placement import Placement, grid_placement
from repro.utils.rng import RngLike, ensure_rng
from repro.variation.model import VariationModel


@dataclass
class CircuitDesign:
    """A complete design: netlist + library + placement + clocking + variation.

    Attributes
    ----------
    netlist:
        The gate-level netlist.
    library:
        The cell library the netlist is mapped to.
    placement:
        Physical locations of the instances.
    clock_skew:
        Static clock arrival offsets of the flip-flops.
    variation_model:
        Process-variation model matched to the placement's die size.
    name:
        Design name (defaults to the netlist name).
    """

    netlist: Netlist
    library: CellLibrary
    placement: Placement
    clock_skew: ClockSkewMap
    variation_model: VariationModel
    name: str = ""
    #: Optional cache slot for the design's sequential constraint graph
    #: (populated by :func:`repro.timing.constraints.ensure_constraint_graph`
    #: and by the suite builder; typed loosely to avoid a circular import).
    cached_constraint_graph: Optional[object] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.netlist.name

    # ------------------------------------------------------------------
    @classmethod
    def from_netlist(
        cls,
        netlist: Netlist,
        library: Optional[CellLibrary] = None,
        clock_skew_magnitude: float = 0.0,
        grid_rows: int = 4,
        grid_cols: int = 4,
        rng: RngLike = None,
        placement: Optional[Placement] = None,
    ) -> "CircuitDesign":
        """Build a design around ``netlist`` with default physical data.

        Parameters
        ----------
        clock_skew_magnitude:
            Half-width of the random static skew assigned to each flip-flop
            (0 disables skew injection).
        grid_rows, grid_cols:
            Spatial-correlation grid of the variation model.
        """
        generator = ensure_rng(rng)
        library = library or default_library()
        netlist.validate(library=library)
        placement = placement or grid_placement(netlist, rng=generator)
        if clock_skew_magnitude > 0.0:
            skew = random_clock_skews(netlist.flip_flops, clock_skew_magnitude, rng=generator)
        else:
            skew = ClockSkewMap.zero(netlist.flip_flops)
        variation = VariationModel(
            die_width=placement.die_width,
            die_height=placement.die_height,
            grid_rows=grid_rows,
            grid_cols=grid_cols,
        )
        return cls(
            netlist=netlist,
            library=library,
            placement=placement,
            clock_skew=skew,
            variation_model=variation,
            name=netlist.name,
        )

    # ------------------------------------------------------------------
    @property
    def flip_flops(self) -> Tuple[str, ...]:
        """Flip-flop names of the design."""
        return tuple(self.netlist.flip_flops)

    def ff_locations(self) -> Dict[str, Tuple[float, float]]:
        """Placement locations of all flip-flops."""
        return {ff: self.placement.location(ff) for ff in self.netlist.flip_flops}

    def min_ff_pitch(self) -> float:
        """Minimum Manhattan distance between two flip-flops."""
        return self.placement.min_flip_flop_pitch(self.netlist.flip_flops)

    def summary(self) -> Dict[str, float]:
        """Size and physical summary used in reports."""
        stats = self.netlist.stats()
        return {
            "name": self.name,
            "flip_flops": stats["flip_flops"],
            "gates": stats["gates"],
            "primary_inputs": stats["primary_inputs"],
            "primary_outputs": stats["primary_outputs"],
            "die_width": self.placement.die_width,
            "die_height": self.placement.die_height,
            "max_abs_clock_skew": self.clock_skew.max_abs_skew(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.netlist.stats()
        return (
            f"CircuitDesign({self.name!r}, ffs={stats['flip_flops']}, "
            f"gates={stats['gates']})"
        )
