"""Gate-level netlist data model.

A :class:`Netlist` is a collection of named :class:`Instance` objects
(primary inputs, primary outputs, combinational gates and flip-flops)
connected by name.  Signals and instance outputs are identified: every
instance drives exactly one signal whose name equals the instance name,
which matches the ISCAS89 ``.bench`` convention and keeps the data model
small.

Sequential loops (feedback through flip-flops) are legal; combinational
loops are not and are rejected by :meth:`Netlist.validate`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import networkx as nx


class InstanceKind(enum.Enum):
    """Role of an instance in the netlist."""

    PRIMARY_INPUT = "primary_input"
    PRIMARY_OUTPUT = "primary_output"
    GATE = "gate"
    FLIP_FLOP = "flip_flop"


@dataclass
class Instance:
    """One netlist instance.

    Attributes
    ----------
    name:
        Unique instance (and output signal) name.
    kind:
        Role of the instance.
    cell:
        Library cell name (``None`` for primary inputs/outputs).
    fanins:
        Names of the instances driving this instance's inputs, in pin order.
        For a flip-flop the single fan-in is its ``D`` input.
    """

    name: str
    kind: InstanceKind
    cell: Optional[str] = None
    fanins: List[str] = field(default_factory=list)

    @property
    def is_flip_flop(self) -> bool:
        """Whether this instance is a flip-flop."""
        return self.kind is InstanceKind.FLIP_FLOP

    @property
    def is_gate(self) -> bool:
        """Whether this instance is a combinational gate."""
        return self.kind is InstanceKind.GATE


class Netlist:
    """A named gate-level netlist."""

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self._instances: Dict[str, Instance] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add(self, instance: Instance) -> Instance:
        if instance.name in self._instances:
            raise ValueError(f"instance {instance.name!r} already exists in netlist {self.name!r}")
        self._instances[instance.name] = instance
        return instance

    def add_primary_input(self, name: str) -> Instance:
        """Add a primary input."""
        return self._add(Instance(name, InstanceKind.PRIMARY_INPUT))

    def add_primary_output(self, name: str, driver: Optional[str] = None) -> Instance:
        """Add a primary output; ``driver`` is the signal observed at the port."""
        fanins = [driver] if driver is not None else []
        return self._add(Instance(name, InstanceKind.PRIMARY_OUTPUT, fanins=fanins))

    def add_gate(self, name: str, cell: str, fanins: Sequence[str]) -> Instance:
        """Add a combinational gate instance of library cell ``cell``."""
        return self._add(Instance(name, InstanceKind.GATE, cell=cell, fanins=list(fanins)))

    def add_flip_flop(self, name: str, cell: str = "DFF", data_input: Optional[str] = None) -> Instance:
        """Add a flip-flop; its single fan-in (``D`` input) may be set later."""
        fanins = [data_input] if data_input is not None else []
        return self._add(Instance(name, InstanceKind.FLIP_FLOP, cell=cell, fanins=fanins))

    def set_flip_flop_input(self, name: str, data_input: str) -> None:
        """Connect (or reconnect) the ``D`` input of flip-flop ``name``."""
        inst = self.instance(name)
        if not inst.is_flip_flop:
            raise ValueError(f"{name!r} is not a flip-flop")
        inst.fanins = [data_input]

    def set_output_driver(self, name: str, driver: str) -> None:
        """Connect (or reconnect) the driver of primary output ``name``."""
        inst = self.instance(name)
        if inst.kind is not InstanceKind.PRIMARY_OUTPUT:
            raise ValueError(f"{name!r} is not a primary output")
        inst.fanins = [driver]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def instance(self, name: str) -> Instance:
        """Look up an instance by name."""
        try:
            return self._instances[name]
        except KeyError:
            raise KeyError(f"instance {name!r} not found in netlist {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._instances

    def __len__(self) -> int:
        return len(self._instances)

    @property
    def instances(self) -> Dict[str, Instance]:
        """All instances keyed by name (insertion order preserved)."""
        return self._instances

    def _names_of(self, kind: InstanceKind) -> List[str]:
        return [inst.name for inst in self._instances.values() if inst.kind is kind]

    @property
    def primary_inputs(self) -> List[str]:
        """Names of the primary inputs."""
        return self._names_of(InstanceKind.PRIMARY_INPUT)

    @property
    def primary_outputs(self) -> List[str]:
        """Names of the primary outputs."""
        return self._names_of(InstanceKind.PRIMARY_OUTPUT)

    @property
    def flip_flops(self) -> List[str]:
        """Names of the flip-flops."""
        return self._names_of(InstanceKind.FLIP_FLOP)

    @property
    def gates(self) -> List[str]:
        """Names of the combinational gates."""
        return self._names_of(InstanceKind.GATE)

    @property
    def n_flip_flops(self) -> int:
        """Number of flip-flops (``ns`` in the paper's Table I)."""
        return len(self.flip_flops)

    @property
    def n_gates(self) -> int:
        """Number of combinational gates (``ng`` in the paper's Table I)."""
        return len(self.gates)

    # ------------------------------------------------------------------
    # Graph views
    # ------------------------------------------------------------------
    def fanout_map(self) -> Dict[str, List[str]]:
        """Map from each instance to the instances it drives."""
        fanouts: Dict[str, List[str]] = {name: [] for name in self._instances}
        for inst in self._instances.values():
            for src in inst.fanins:
                if src not in self._instances:
                    raise KeyError(
                        f"instance {inst.name!r} references unknown fan-in {src!r}"
                    )
                fanouts[src].append(inst.name)
        return fanouts

    def combinational_digraph(self) -> "nx.DiGraph":
        """Directed graph of the combinational logic with flip-flops split.

        Each flip-flop ``f`` appears as two nodes: ``f`` acting as a source
        (its ``Q`` output launching into the combinational logic) and
        ``("sink", f)`` acting as a sink (its ``D`` input).  The resulting
        graph is acyclic for a legal sequential circuit.
        """
        graph = nx.DiGraph()
        for inst in self._instances.values():
            if inst.is_flip_flop:
                graph.add_node(inst.name, kind="ff_source")
                graph.add_node(("sink", inst.name), kind="ff_sink")
            else:
                graph.add_node(inst.name, kind=inst.kind.value)
        for inst in self._instances.values():
            target = ("sink", inst.name) if inst.is_flip_flop else inst.name
            for src in inst.fanins:
                graph.add_edge(src, target)
        return graph

    def sequential_adjacency(self) -> "nx.DiGraph":
        """Flip-flop-to-flip-flop adjacency (which FF pairs are connected by
        at least one combinational path).  Node set = flip-flop names."""
        comb = self.combinational_digraph()
        seq = nx.DiGraph()
        seq.add_nodes_from(self.flip_flops)
        # Forward reachability from every FF source restricted to comb nodes.
        for ff in self.flip_flops:
            for node in nx.descendants(comb, ff):
                if isinstance(node, tuple) and node[0] == "sink":
                    seq.add_edge(ff, node[1])
        return seq

    # ------------------------------------------------------------------
    # Validation & statistics
    # ------------------------------------------------------------------
    def validate(self, library=None, strict_arity: bool = False) -> None:
        """Check structural consistency.

        Raises ``ValueError`` on dangling references, gates without fan-ins,
        flip-flops without a connected ``D`` input, or combinational cycles.
        When ``library`` is given, unknown cells are reported; with
        ``strict_arity=True`` gate fan-in counts must match the cell.
        """
        for inst in self._instances.values():
            for src in inst.fanins:
                if src not in self._instances:
                    raise ValueError(
                        f"instance {inst.name!r} references unknown fan-in {src!r}"
                    )
            if inst.is_gate and not inst.fanins:
                raise ValueError(f"gate {inst.name!r} has no fan-ins")
            if inst.is_flip_flop and not inst.fanins:
                raise ValueError(f"flip-flop {inst.name!r} has no D input connected")
            if library is not None and inst.cell is not None:
                cell = library.get(inst.cell)
                if strict_arity and inst.is_gate and len(inst.fanins) != cell.n_inputs:
                    raise ValueError(
                        f"gate {inst.name!r}: cell {cell.name} expects {cell.n_inputs} "
                        f"inputs, got {len(inst.fanins)}"
                    )
        comb = self.combinational_digraph()
        if not nx.is_directed_acyclic_graph(comb):
            cycle = nx.find_cycle(comb)
            raise ValueError(f"combinational cycle detected: {cycle}")

    def stats(self) -> Dict[str, int]:
        """Basic size statistics (counts per instance kind)."""
        return {
            "primary_inputs": len(self.primary_inputs),
            "primary_outputs": len(self.primary_outputs),
            "flip_flops": self.n_flip_flops,
            "gates": self.n_gates,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"Netlist({self.name!r}, ffs={s['flip_flops']}, gates={s['gates']}, "
            f"pis={s['primary_inputs']}, pos={s['primary_outputs']})"
        )
