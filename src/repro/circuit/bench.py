"""ISCAS89 ``.bench`` format reader and writer.

The ISCAS89 benchmark circuits the paper evaluates are distributed in the
``.bench`` format::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = DFF(G14)
    G11 = NAND(G0, G10)
    G14 = NOT(G11)

The reader maps each ``.bench`` function to a cell of the target library by
function name and arity (falling back to the closest arity when the exact
one is missing, e.g. a 5-input NAND is mapped to ``NAND4``).  The writer
produces files that round-trip through the reader.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.circuit.library import CellLibrary, default_library
from repro.circuit.netlist import Netlist

_LINE_RE = re.compile(r"^\s*(?P<out>[\w\.\[\]\$]+)\s*=\s*(?P<func>\w+)\s*\((?P<args>[^)]*)\)\s*$")
_PORT_RE = re.compile(r"^\s*(?P<kind>INPUT|OUTPUT)\s*\((?P<name>[\w\.\[\]\$]+)\)\s*$", re.IGNORECASE)

#: ``.bench`` function name -> canonical library function tag.
_FUNCTION_ALIASES = {
    "NOT": "NOT",
    "INV": "NOT",
    "BUF": "BUF",
    "BUFF": "BUF",
    "AND": "AND",
    "NAND": "NAND",
    "OR": "OR",
    "NOR": "NOR",
    "XOR": "XOR",
    "XNOR": "XNOR",
    "MUX": "MUX",
    "AOI": "AOI",
    "OAI": "OAI",
    "DFF": "DFF",
}


class BenchParseError(ValueError):
    """Raised when a ``.bench`` file cannot be parsed."""


def _select_cell(library: CellLibrary, function: str, arity: int) -> str:
    """Pick the library cell implementing ``function`` with the closest arity."""
    candidates = [
        c for c in library if c.function.upper() == function.upper()
    ]
    if not candidates:
        raise BenchParseError(
            f"library {library.name!r} has no cell for function {function!r}"
        )
    exact = [c for c in candidates if c.n_inputs == arity]
    if exact:
        return exact[0].name
    # Fall back to the largest cell not exceeding the arity, else the largest.
    candidates.sort(key=lambda c: c.n_inputs)
    not_exceeding = [c for c in candidates if c.n_inputs <= arity]
    chosen = not_exceeding[-1] if not_exceeding else candidates[-1]
    return chosen.name


def parse_bench(
    text: str,
    name: str = "bench",
    library: Optional[CellLibrary] = None,
) -> Netlist:
    """Parse ``.bench`` text into a :class:`~repro.circuit.netlist.Netlist`.

    Output ports are materialised as ``<signal>__po`` primary-output
    instances so that a signal may simultaneously feed logic and a port.
    """
    library = library or default_library()
    netlist = Netlist(name=name)
    pending_outputs: List[str] = []
    definitions: List[Tuple[str, str, List[str]]] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        port = _PORT_RE.match(line)
        if port:
            kind = port.group("kind").upper()
            signal = port.group("name")
            if kind == "INPUT":
                netlist.add_primary_input(signal)
            else:
                pending_outputs.append(signal)
            continue
        assign = _LINE_RE.match(line)
        if assign:
            out = assign.group("out")
            func = assign.group("func").upper()
            args = [a.strip() for a in assign.group("args").split(",") if a.strip()]
            if func not in _FUNCTION_ALIASES:
                raise BenchParseError(f"line {lineno}: unknown function {func!r}")
            definitions.append((out, _FUNCTION_ALIASES[func], args))
            continue
        raise BenchParseError(f"line {lineno}: cannot parse {raw!r}")

    # Create instances (two passes: declare, then fan-ins are validated later).
    for out, func, args in definitions:
        if func == "DFF":
            if len(args) != 1:
                raise BenchParseError(f"flip-flop {out!r} must have exactly one input")
            netlist.add_flip_flop(out, cell="DFF", data_input=args[0])
        else:
            cell = _select_cell(library, func, len(args))
            netlist.add_gate(out, cell=cell, fanins=args)

    for signal in pending_outputs:
        netlist.add_primary_output(f"{signal}__po", driver=signal)

    netlist.validate(library=library, strict_arity=False)
    return netlist


def load_bench(
    path: Union[str, Path],
    library: Optional[CellLibrary] = None,
    name: Optional[str] = None,
) -> Netlist:
    """Read a ``.bench`` file from disk."""
    path = Path(path)
    return parse_bench(path.read_text(), name=name or path.stem, library=library)


def write_bench(netlist: Netlist, library: Optional[CellLibrary] = None) -> str:
    """Serialise a netlist back to ``.bench`` text.

    Gate cells are written using their library function tag; primary-output
    wrapper instances (``*__po``) are written as ``OUTPUT(<driver>)``.
    """
    library = library or default_library()
    lines: List[str] = [f"# netlist {netlist.name}"]
    for pi in netlist.primary_inputs:
        lines.append(f"INPUT({pi})")
    for po in netlist.primary_outputs:
        inst = netlist.instance(po)
        driver = inst.fanins[0] if inst.fanins else po
        lines.append(f"OUTPUT({driver})")
    for name_ in netlist.flip_flops:
        inst = netlist.instance(name_)
        lines.append(f"{name_} = DFF({inst.fanins[0]})")
    for name_ in netlist.gates:
        inst = netlist.instance(name_)
        func = library.get(inst.cell).function if inst.cell in library else inst.cell
        func = {"NOT": "NOT", "BUF": "BUFF"}.get(func, func)
        lines.append(f"{name_} = {func}({', '.join(inst.fanins)})")
    return "\n".join(lines) + "\n"


def save_bench(netlist: Netlist, path: Union[str, Path], library: Optional[CellLibrary] = None) -> None:
    """Write a netlist to a ``.bench`` file."""
    Path(path).write_text(write_bench(netlist, library=library))
