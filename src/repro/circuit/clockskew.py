"""Static clock-skew injection.

The paper's experimental setup notes: *"To these circuits we also added
clock skews so that they have more critical paths."*  A static skew at a
flip-flop shifts its clock arrival relative to the reference edge; this
tightens some setup constraints and relaxes others, spreading the
criticality across more flip-flop pairs — which is exactly what makes
post-silicon tuning interesting.

The skew assigned here is *static design skew* (from the clock-tree
topology), distinct from the configurable post-silicon tuning delay ``x_i``
the insertion flow decides about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_non_negative


@dataclass
class ClockSkewMap:
    """Static clock arrival offsets per flip-flop (time units)."""

    skews: Dict[str, float] = field(default_factory=dict)

    def skew(self, ff: str) -> float:
        """Skew of flip-flop ``ff`` (0 when unspecified)."""
        return float(self.skews.get(ff, 0.0))

    def __getitem__(self, ff: str) -> float:
        return self.skew(ff)

    def __len__(self) -> int:
        return len(self.skews)

    def max_abs_skew(self) -> float:
        """Largest absolute skew in the map."""
        if not self.skews:
            return 0.0
        return float(max(abs(v) for v in self.skews.values()))

    @classmethod
    def zero(cls, flip_flops: Iterable[str]) -> "ClockSkewMap":
        """A zero-skew map covering the given flip-flops."""
        return cls({ff: 0.0 for ff in flip_flops})

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, float]) -> "ClockSkewMap":
        """Build a map from an existing dict-like object."""
        return cls({str(k): float(v) for k, v in mapping.items()})


def random_clock_skews(
    flip_flops: Iterable[str],
    magnitude: float,
    rng: RngLike = None,
    distribution: str = "uniform",
) -> ClockSkewMap:
    """Assign random static skews to flip-flops.

    Parameters
    ----------
    flip_flops:
        Flip-flop names to cover.
    magnitude:
        Half-width of the skew distribution (time units).  ``uniform``
        skews lie in ``[-magnitude, +magnitude]``; ``normal`` skews have
        standard deviation ``magnitude / 2`` truncated at ``±magnitude``.
    distribution:
        ``"uniform"`` or ``"normal"``.
    """
    check_non_negative(magnitude, "magnitude")
    generator = ensure_rng(rng)
    ffs = list(flip_flops)
    if distribution == "uniform":
        values = generator.uniform(-magnitude, magnitude, size=len(ffs))
    elif distribution == "normal":
        values = generator.normal(0.0, magnitude / 2.0 if magnitude else 0.0, size=len(ffs))
        values = np.clip(values, -magnitude, magnitude)
    else:
        raise ValueError(f"unknown distribution {distribution!r}")
    return ClockSkewMap({ff: float(v) for ff, v in zip(ffs, values, strict=True)})
