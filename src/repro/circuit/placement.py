"""Cell placement.

Buffer grouping (paper Sec. III-C, Fig. 6) needs physical flip-flop
locations: two buffers may only share one physical tuning buffer when the
Manhattan distance between their flip-flops is below a threshold expressed
as a multiple of the minimum flip-flop pitch.

The reproduction uses a simple but structured placement: instances are laid
out on a uniform grid of rows, with connected instances kept close together
by placing them in breadth-first order from the primary inputs and
flip-flops.  This yields the spatial locality the grouping step (and the
spatially-correlated variation model) relies on, without needing a full
placer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


from repro.circuit.netlist import Netlist
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class Placement:
    """Physical locations of netlist instances.

    Attributes
    ----------
    locations:
        Map from instance name to ``(x, y)`` in placement units.
    die_width, die_height:
        Extent of the die.
    row_pitch:
        Vertical distance between placement rows (also used as the minimum
        flip-flop pitch for the grouping distance threshold).
    """

    locations: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    die_width: float = 100.0
    die_height: float = 100.0
    row_pitch: float = 1.0

    def location(self, name: str) -> Tuple[float, float]:
        """Location of an instance; raises ``KeyError`` when unplaced."""
        try:
            return self.locations[name]
        except KeyError:
            raise KeyError(f"instance {name!r} has no placement") from None

    def manhattan_distance(self, a: str, b: str) -> float:
        """Manhattan distance between two placed instances."""
        xa, ya = self.location(a)
        xb, yb = self.location(b)
        return abs(xa - xb) + abs(ya - yb)

    def min_flip_flop_pitch(self, flip_flops: Iterable[str]) -> float:
        """Smallest pairwise Manhattan distance among the given flip-flops.

        Falls back to :attr:`row_pitch` when fewer than two flip-flops are
        placed (or when two share a location).
        """
        ffs = [ff for ff in flip_flops if ff in self.locations]
        best = math.inf
        # A full O(n^2) scan is fine for the circuit sizes we handle; for the
        # larger suite entries we subsample to keep this O(n * k).
        limit = 2000
        step = max(1, len(ffs) // limit)
        sampled = ffs[::step]
        for i, a in enumerate(sampled):
            for b in sampled[i + 1:]:
                d = self.manhattan_distance(a, b)
                if 0.0 < d < best:
                    best = d
        if not math.isfinite(best):
            return self.row_pitch
        return best

    def __len__(self) -> int:
        return len(self.locations)


def grid_placement(
    netlist: Netlist,
    utilization: float = 0.7,
    rng: RngLike = None,
    jitter: float = 0.25,
) -> Placement:
    """Place all instances of ``netlist`` on a uniform grid.

    Instances are ordered by a breadth-first traversal of the combinational
    graph starting from primary inputs and flip-flop outputs, so that
    logically connected cells end up physically close.  A small random
    jitter avoids degenerate zero distances.

    Parameters
    ----------
    utilization:
        Fraction of grid sites occupied (lower values spread cells out).
    jitter:
        Uniform jitter (in fractions of a site) added to each coordinate.
    """
    if not 0.0 < utilization <= 1.0:
        raise ValueError(f"utilization must be in (0, 1], got {utilization}")
    generator = ensure_rng(rng)

    order = _bfs_order(netlist)
    n_cells = len(order)
    n_sites = max(1, int(math.ceil(n_cells / utilization)))
    n_cols = max(1, int(math.ceil(math.sqrt(n_sites))))
    n_rows = max(1, int(math.ceil(n_sites / n_cols)))
    pitch = 1.0
    die_width = n_cols * pitch
    die_height = n_rows * pitch

    # Spread occupied sites uniformly over the available sites.
    site_indices = _spread_indices(n_cells, n_rows * n_cols)
    locations: Dict[str, Tuple[float, float]] = {}
    for name, site in zip(order, site_indices, strict=True):
        row, col = divmod(site, n_cols)
        dx, dy = generator.uniform(-jitter, jitter, size=2) * pitch
        x = min(max((col + 0.5) * pitch + dx, 0.0), die_width)
        y = min(max((row + 0.5) * pitch + dy, 0.0), die_height)
        locations[name] = (float(x), float(y))

    return Placement(
        locations=locations,
        die_width=die_width,
        die_height=die_height,
        row_pitch=pitch,
    )


def _bfs_order(netlist: Netlist) -> List[str]:
    """Breadth-first instance order from the circuit's timing start points."""
    comb = netlist.combinational_digraph()
    starts = list(netlist.primary_inputs) + list(netlist.flip_flops)
    visited: Dict[str, None] = {}
    queue: List[str] = list(starts)
    for node in queue:
        visited.setdefault(node, None)
    while queue:
        node = queue.pop(0)
        for succ in comb.successors(node):
            key = succ[1] if isinstance(succ, tuple) else succ
            if key not in visited:
                visited[key] = None
                if not isinstance(succ, tuple):
                    queue.append(succ)
    # Any instance not reached (e.g. dangling outputs) is appended at the end.
    for name in netlist.instances:
        visited.setdefault(name, None)
    return list(visited.keys())


def _spread_indices(n_items: int, n_sites: int) -> List[int]:
    """Evenly spread ``n_items`` indices over ``range(n_sites)``."""
    if n_items <= 0:
        return []
    if n_items >= n_sites:
        return [i % n_sites for i in range(n_items)]
    stride = n_sites / n_items
    return [int(i * stride) for i in range(n_items)]
