"""Cell library.

The paper maps the benchmark circuits to a library from an industry partner
which is not redistributable.  :func:`default_library` provides a small but
realistic replacement: a set of standard combinational cells with staggered
nominal delays, a clock buffer and a D flip-flop.  Nominal delays are in
library time units (think ~10 ps per unit at a submicron node); the exact
values only shift the clock-period scale, not the structure of the results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.circuit.cells import Cell, CellKind, FlipFlopTiming


@dataclass
class CellLibrary:
    """A named collection of :class:`~repro.circuit.cells.Cell` objects."""

    name: str
    cells: Dict[str, Cell] = field(default_factory=dict)

    def add(self, cell: Cell) -> None:
        """Add a cell; raises ``ValueError`` on duplicate names."""
        if cell.name in self.cells:
            raise ValueError(f"cell {cell.name!r} already exists in library {self.name!r}")
        self.cells[cell.name] = cell

    def get(self, name: str) -> Cell:
        """Look up a cell by name; raises ``KeyError`` with a helpful message."""
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(
                f"cell {name!r} not found in library {self.name!r}; "
                f"available: {sorted(self.cells)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)

    # ------------------------------------------------------------------
    def combinational_cells(self) -> List[Cell]:
        """All combinational (non-FF, non-buffer) cells."""
        return [c for c in self.cells.values() if c.kind is CellKind.COMBINATIONAL]

    def flip_flop_cells(self) -> List[Cell]:
        """All flip-flop cells."""
        return [c for c in self.cells.values() if c.kind is CellKind.FLIP_FLOP]

    def by_function(self, function: str) -> Optional[Cell]:
        """Return the first cell implementing ``function`` (case-insensitive)."""
        function = function.upper()
        for cell in self.cells.values():
            if cell.function.upper() == function:
                return cell
        return None

    def cells_with_inputs(self, n_inputs: int) -> List[Cell]:
        """Combinational cells with exactly ``n_inputs`` inputs."""
        return [c for c in self.combinational_cells() if c.n_inputs == n_inputs]


def default_library(name: str = "repro_generic_45nm") -> CellLibrary:
    """Build the default generic library used throughout the reproduction.

    The library contains inverters, 2/3/4-input NAND/NOR/AND/OR gates, a
    2-input XOR/XNOR, a 2:1 MUX, buffers and a single D flip-flop.  Delay
    ratios between the cells follow typical standard-cell libraries.
    """
    lib = CellLibrary(name=name)
    ff_timing = FlipFlopTiming(setup=2.0, hold=1.0, clk_to_q=2.5)

    combinational = [
        # name,     function, inputs, delay, min_delay, area
        ("INV",     "NOT",    1, 1.0, 0.6, 1.0),
        ("BUF",     "BUF",    1, 1.4, 0.9, 1.2),
        ("NAND2",   "NAND",   2, 1.6, 1.0, 1.4),
        ("NAND3",   "NAND",   3, 2.0, 1.2, 1.8),
        ("NAND4",   "NAND",   4, 2.5, 1.5, 2.2),
        ("NOR2",    "NOR",    2, 1.8, 1.1, 1.4),
        ("NOR3",    "NOR",    3, 2.3, 1.4, 1.8),
        ("NOR4",    "NOR",    4, 2.9, 1.7, 2.2),
        ("AND2",    "AND",    2, 2.0, 1.2, 1.6),
        ("AND3",    "AND",    3, 2.4, 1.5, 2.0),
        ("OR2",     "OR",     2, 2.1, 1.3, 1.6),
        ("OR3",     "OR",     3, 2.6, 1.6, 2.0),
        ("XOR2",    "XOR",    2, 2.8, 1.7, 2.6),
        ("XNOR2",   "XNOR",   2, 2.9, 1.8, 2.6),
        ("MUX2",    "MUX",    3, 2.6, 1.6, 2.4),
        ("AOI21",   "AOI",    3, 2.2, 1.3, 2.0),
        ("OAI21",   "OAI",    3, 2.2, 1.3, 2.0),
    ]
    for cname, func, n_in, delay, min_delay, area in combinational:
        lib.add(
            Cell(
                name=cname,
                kind=CellKind.BUFFER if func == "BUF" else CellKind.COMBINATIONAL,
                n_inputs=n_in,
                delay=delay,
                min_delay=min_delay,
                area=area,
                function=func,
            )
        )

    lib.add(
        Cell(
            name="DFF",
            kind=CellKind.FLIP_FLOP,
            n_inputs=1,
            delay=ff_timing.clk_to_q,
            min_delay=ff_timing.clk_to_q * 0.7,
            area=4.0,
            function="DFF",
            ff_timing=ff_timing,
        )
    )
    return lib


def library_from_cells(name: str, cells: Iterable[Cell]) -> CellLibrary:
    """Convenience constructor for a library from an iterable of cells."""
    lib = CellLibrary(name=name)
    for cell in cells:
        lib.add(cell)
    return lib
