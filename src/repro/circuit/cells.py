"""Cell definitions.

A :class:`Cell` describes one library element: its logic function tag, the
number of inputs, its nominal propagation delay (used for the maximum-delay
arc) and its nominal contamination delay (used for the minimum-delay arc),
plus an area figure used for reporting.  Flip-flop cells additionally carry
a :class:`FlipFlopTiming` record (setup, hold, clock-to-Q).

Delays are expressed in arbitrary *library time units*; the whole
reproduction is unit-consistent so absolute units do not matter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.utils.validation import check_non_negative, check_positive


class CellKind(enum.Enum):
    """Coarse functional class of a cell."""

    COMBINATIONAL = "combinational"
    FLIP_FLOP = "flip_flop"
    BUFFER = "buffer"


@dataclass(frozen=True)
class FlipFlopTiming:
    """Sequential timing quantities of a flip-flop cell.

    Attributes
    ----------
    setup:
        Setup time ``s`` (data must be stable this long before the clock edge).
    hold:
        Hold time ``h`` (data must be stable this long after the clock edge).
    clk_to_q:
        Clock-to-output propagation delay.
    """

    setup: float = 2.0
    hold: float = 1.0
    clk_to_q: float = 2.0

    def __post_init__(self) -> None:
        check_non_negative(self.setup, "setup")
        check_non_negative(self.hold, "hold")
        check_non_negative(self.clk_to_q, "clk_to_q")


@dataclass(frozen=True)
class Cell:
    """One library cell.

    Attributes
    ----------
    name:
        Library name, e.g. ``"NAND2"``.
    kind:
        Functional class (combinational, flip-flop, buffer).
    n_inputs:
        Number of data inputs (flip-flops have exactly one, ``D``).
    delay:
        Nominal propagation (maximum) delay of the cell.
    min_delay:
        Nominal contamination (minimum) delay; defaults to 60 % of ``delay``.
    area:
        Relative area (for buffer-cost reporting).
    function:
        Logic-function tag (``"NAND"``, ``"AND"``, ...); informational only —
        the timing flow never evaluates logic values.
    ff_timing:
        Sequential timing record, required when ``kind`` is ``FLIP_FLOP``.
    """

    name: str
    kind: CellKind
    n_inputs: int
    delay: float
    min_delay: Optional[float] = None
    area: float = 1.0
    function: str = ""
    ff_timing: Optional[FlipFlopTiming] = field(default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("cell name must not be empty")
        if self.n_inputs < 0:
            raise ValueError("n_inputs must be >= 0")
        check_non_negative(self.delay, "delay")
        check_positive(self.area, "area")
        if self.min_delay is not None:
            check_non_negative(self.min_delay, "min_delay")
            if self.min_delay > self.delay:
                raise ValueError(
                    f"min_delay ({self.min_delay}) must not exceed delay ({self.delay})"
                )
        if self.kind is CellKind.FLIP_FLOP and self.ff_timing is None:
            raise ValueError(f"flip-flop cell {self.name!r} requires ff_timing")

    @property
    def contamination_delay(self) -> float:
        """Nominal minimum (contamination) delay of the cell."""
        if self.min_delay is not None:
            return self.min_delay
        return 0.6 * self.delay

    @property
    def is_sequential(self) -> bool:
        """Whether the cell is a flip-flop."""
        return self.kind is CellKind.FLIP_FLOP
