"""Synthetic sequential-circuit generators.

The paper's benchmark circuits (ISCAS89 + TAU 2013 contest) are mapped to
an industrial library that is not redistributable, so the reproduction
generates *structurally equivalent* circuits: sequential netlists with a
specified number of flip-flops and combinational gates, organised as
register-to-register **clouds** (a cloud = one combinational block between
a small group of launching flip-flops and a small group of capturing
flip-flops).  This yields

* a sparse, local flip-flop-to-flip-flop adjacency (each capture flip-flop
  sees only the handful of launch flip-flops of its cloud), as in real
  designs, and
* a wide spread of cloud logic depths, so some register-to-register stages
  are far more timing-critical than others — which is precisely the
  imbalance post-silicon clock tuning exploits.

The generator is deterministic given its seed and is the workhorse behind
:mod:`repro.circuit.suite`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuit.library import CellLibrary, default_library
from repro.circuit.netlist import Netlist
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the synthetic circuit generator.

    Attributes
    ----------
    n_flip_flops:
        Number of flip-flops (``ns``).
    n_gates:
        Number of combinational gates (``ng``).
    n_primary_inputs / n_primary_outputs:
        Port counts; defaults are derived from the flip-flop count.
    max_depth / min_depth:
        Range of logic depths (in gate levels) a register-to-register cloud
        may have.  Each cloud draws its own depth, which creates the delay
        imbalance between neighbouring stages.
    deep_cloud_fraction:
        Fraction of clouds that are *deep* (close to ``max_depth``).  Real
        designs have a handful of dominant critical stages; keeping this
        fraction small concentrates timing criticality on a few
        register-to-register stages, which is the situation post-silicon
        tuning (and the paper's small buffer counts) relies on.
    shallow_depth_fraction:
        Depth of the non-deep clouds as a fraction of ``max_depth``.
    launch_group_size:
        Number of launching flip-flops feeding one cloud.
    capture_group_size:
        Number of capturing flip-flops fed by one cloud.
    extra_launch_prob:
        Probability that a cloud additionally launches from a flip-flop of
        a neighbouring group (creates cross-stage coupling).
    """

    n_flip_flops: int
    n_gates: int
    n_primary_inputs: Optional[int] = None
    n_primary_outputs: Optional[int] = None
    max_depth: int = 12
    min_depth: int = 3
    deep_cloud_fraction: float = 0.12
    shallow_depth_fraction: float = 0.6
    launch_group_size: int = 6
    capture_group_size: int = 6
    extra_launch_prob: float = 0.3

    def __post_init__(self) -> None:
        check_positive(self.n_flip_flops, "n_flip_flops")
        check_positive(self.n_gates, "n_gates")
        if self.min_depth < 1 or self.max_depth < self.min_depth:
            raise ValueError("require 1 <= min_depth <= max_depth")
        check_positive(self.launch_group_size, "launch_group_size")
        check_positive(self.capture_group_size, "capture_group_size")
        if not 0.0 <= self.extra_launch_prob <= 1.0:
            raise ValueError("extra_launch_prob must lie in [0, 1]")
        if not 0.0 < self.deep_cloud_fraction <= 1.0:
            raise ValueError("deep_cloud_fraction must lie in (0, 1]")
        if not 0.0 < self.shallow_depth_fraction <= 1.0:
            raise ValueError("shallow_depth_fraction must lie in (0, 1]")

    @property
    def resolved_primary_inputs(self) -> int:
        """Primary-input count with the default heuristic applied."""
        if self.n_primary_inputs is not None:
            return self.n_primary_inputs
        return max(4, self.n_flip_flops // 12)

    @property
    def resolved_primary_outputs(self) -> int:
        """Primary-output count with the default heuristic applied."""
        if self.n_primary_outputs is not None:
            return self.n_primary_outputs
        return max(4, self.n_flip_flops // 16)


def generate_sequential_circuit(
    config: GeneratorConfig,
    library: Optional[CellLibrary] = None,
    rng: RngLike = None,
    name: str = "generated",
) -> Netlist:
    """Generate a random sequential netlist matching ``config``.

    The construction is level-ordered inside each cloud (gates only receive
    fan-ins from strictly earlier levels, launching flip-flops or primary
    inputs), so the combinational logic is acyclic by construction.
    """
    library = library or default_library()
    generator = ensure_rng(rng)
    netlist = Netlist(name=name)

    n_ffs = config.n_flip_flops
    n_gates = config.n_gates
    n_pis = config.resolved_primary_inputs
    n_pos = config.resolved_primary_outputs

    pis = [f"pi_{i}" for i in range(n_pis)]
    ffs = [f"ff_{i}" for i in range(n_ffs)]

    for pi in pis:
        netlist.add_primary_input(pi)
    for ff in ffs:
        netlist.add_flip_flop(ff, cell="DFF")

    # --- Partition flip-flops into capture groups, one cloud per group ---
    group_size = max(1, min(config.capture_group_size, n_ffs))
    capture_groups: List[List[str]] = [
        ffs[i:i + group_size] for i in range(0, n_ffs, group_size)
    ]
    n_clouds = len(capture_groups)
    gates_per_cloud = _split_evenly(n_gates, n_clouds)

    comb_cells = [c for c in library.combinational_cells() if c.n_inputs >= 1]
    cell_weights = np.array([1.0 / (1.0 + 0.6 * c.n_inputs) for c in comb_cells])
    cell_weights = cell_weights / cell_weights.sum()

    gate_counter = 0
    deep_gate_pool: Dict[int, List[str]] = {}
    for cloud_idx, captures in enumerate(capture_groups):
        # Launch flip-flops of this cloud: the *previous* capture group (ring
        # order) plus, with some probability, a few flip-flops from another
        # group to create cross-stage coupling.
        launch_group = capture_groups[(cloud_idx - 1) % n_clouds]
        launches = list(launch_group[: config.launch_group_size])
        if n_clouds > 1 and generator.random() < config.extra_launch_prob:
            other = capture_groups[int(generator.integers(0, n_clouds))]
            extra = [ff for ff in other if ff not in launches]
            if extra:
                launches.append(str(generator.choice(extra)))
        cloud_pis = [pis[int(i)] for i in generator.choice(n_pis, size=min(2, n_pis), replace=False)]

        # Depth distribution: most clouds are shallow-to-medium, a small
        # fraction is deep (the dominant critical stages).
        shallow_cap = max(config.min_depth, int(round(config.shallow_depth_fraction * config.max_depth)))
        if generator.random() < config.deep_cloud_fraction:
            depth = int(generator.integers(max(config.min_depth, config.max_depth - 2), config.max_depth + 1))
        else:
            depth = int(generator.integers(config.min_depth, shallow_cap + 1))
        n_cloud_gates = gates_per_cloud[cloud_idx]
        deep_gates, all_sources = _build_cloud(
            netlist,
            generator,
            comb_cells,
            cell_weights,
            sources=launches + cloud_pis,
            depth=depth,
            n_gates=n_cloud_gates,
            name_offset=gate_counter,
        )
        gate_counter += n_cloud_gates
        deep_gate_pool[cloud_idx] = deep_gates if deep_gates else all_sources

        # Connect capture flip-flop D inputs to the cloud's deepest gates.
        pool = deep_gate_pool[cloud_idx]
        for ff in captures:
            netlist.set_flip_flop_input(ff, str(generator.choice(pool)))

    # --- Primary outputs observe deep gates of random clouds ---------------
    for i in range(n_pos):
        cloud_idx = int(generator.integers(0, n_clouds))
        pool = deep_gate_pool[cloud_idx]
        netlist.add_primary_output(f"po_{i}", driver=str(generator.choice(pool)))

    netlist.validate(library=library)
    return netlist


def _build_cloud(
    netlist: Netlist,
    generator: np.random.Generator,
    comb_cells: Sequence,
    cell_weights: np.ndarray,
    sources: List[str],
    depth: int,
    n_gates: int,
    name_offset: int,
) -> (List[str], List[str]):
    """Create one combinational cloud and return (deep gates, all sources).

    Gates are assigned to levels ``1 .. depth``; a gate at level ``l`` picks
    fan-ins from levels ``< l`` of the same cloud, the launching flip-flops
    or the cloud's primary inputs, with a strong preference for level
    ``l - 1`` so that chains of the full depth exist.
    """
    if n_gates <= 0:
        return [], list(sources)
    levels: Dict[int, List[str]] = {0: list(sources)}
    # Distribute gates over levels: every level gets at least one gate when
    # possible, the remainder is spread with a mild bias toward early levels.
    depth = min(depth, n_gates)
    per_level = _split_evenly(n_gates, depth)

    gate_idx = name_offset
    for level in range(1, depth + 1):
        levels[level] = []
        prev_level = levels[level - 1]
        earlier: List[str] = [g for lvl in range(level - 1) for g in levels[lvl]]
        for _ in range(per_level[level - 1]):
            cell = comb_cells[int(generator.choice(len(comb_cells), p=cell_weights))]
            gname = f"g_{gate_idx}"
            gate_idx += 1
            fanins = _pick_fanins(generator, cell.n_inputs, prev_level, earlier)
            netlist.add_gate(gname, cell=cell.name, fanins=fanins)
            levels[level].append(gname)

    deep = levels[depth] if levels[depth] else levels[max(levels)]
    return deep, list(sources)


def _pick_fanins(
    generator: np.random.Generator,
    n_inputs: int,
    prev_level: List[str],
    earlier: List[str],
) -> List[str]:
    """Pick fan-ins: the first always comes from the previous level (to keep
    the depth chain alive), the rest from any earlier level."""
    fanins: List[str] = []
    if prev_level:
        fanins.append(str(generator.choice(prev_level)))
    pool = earlier + prev_level
    n_needed = max(1, n_inputs) - len(fanins)
    for _ in range(n_needed):
        if not pool:
            break
        candidate = str(generator.choice(pool))
        if candidate not in fanins or len(pool) <= len(fanins):
            fanins.append(candidate)
    if not fanins:
        fanins = [str(generator.choice(prev_level or earlier))]
    return fanins


def _split_evenly(total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` integers that differ by at most one."""
    if parts <= 0:
        return []
    base = total // parts
    remainder = total % parts
    return [base + (1 if i < remainder else 0) for i in range(parts)]
