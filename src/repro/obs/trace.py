"""Zero-dependency structured span tracing.

One run produces one JSONL trace file: one schema-versioned event per
line, appended without fsync (losing the tail of a trace on a crash is
acceptable; losing flow results is not — results never live here).
Every event carries the schema version ``v``, its ``type``, the emitting
``pid``/``tid`` and a wall-aligned timestamp; ``span`` events add a
``name``, a process-unique ``span`` id, the ``parent`` span id (when the
span was opened inside another span of the same thread), a monotonic
``dur`` in seconds and free-form ``attrs``.

Three layers:

* :class:`Tracer` — a per-process event buffer with a
  :meth:`~Tracer.span` context manager.  Span ids are
  ``"<pid>-<counter>"`` so ids never collide across the processes of a
  warm worker pool; parent linkage uses a per-thread stack.
* Module-level :func:`span` / :func:`configure_tracing` /
  :func:`finalize_tracing` — the global tracer the instrumented code
  talks to.  When no tracer is configured, :func:`span` is a near-free
  no-op (one environment lookup), so instrumentation can stay
  unconditional in hot-ish paths like the engine's chunk functions.
* Worker propagation — :func:`configure_tracing` exports
  :data:`WORKER_ENV` (``"<trace path>|<owner pid>"``).  A worker process
  that emits a span discovers the variable, lazily opens its own
  **side file** (``<trace>.w<pid>.part``, flushed per event because pool
  workers are torn down without cleanup hooks) and
  :func:`finalize_tracing` merges all side files into the main trace —
  so spans from warm process pools land in the same file, attributable
  to their cell/phase/chunk via their ``attrs``.

Span attribution across subsystem boundaries uses
:func:`trace_context`: the campaign runner pushes ``cell=<cell id>``
around each cell, every span opened inside (engine phases, flow stages)
inherits the key into its ``attrs``, and the engine copies the current
context into each chunk payload's ``label`` so even worker-side chunk
spans — emitted in a different process — carry their cell.

Tracing never changes what is computed: events go to their own file,
spans consume no randomness, and the per-run manifest
(:mod:`repro.obs.metrics`) is written next to the trace, not into any
result artifact store.
"""

from __future__ import annotations

import glob
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

#: Version of the trace event schema; bump on breaking layout changes.
TRACE_SCHEMA_VERSION = 1

#: Environment variable announcing an active trace to worker processes.
WORKER_ENV = "REPRO_TRACE_WORKER"

#: Prefix/suffix of default trace file names (``TRACE_<label>.jsonl``).
TRACE_PREFIX = "TRACE_"
TRACE_SUFFIX = ".jsonl"

#: Suffix of per-worker side files merged into the trace on finalize.
WORKER_PART_SUFFIX = ".part"


class TraceError(ValueError):
    """A trace file or tracing configuration is invalid."""


def default_trace_path(label: str, directory: str = ".") -> str:
    """Canonical trace path ``<directory>/TRACE_<label>.jsonl``."""
    safe = "".join(c if (c.isalnum() or c in "-_.") else "-" for c in label)
    return os.path.join(directory, f"{TRACE_PREFIX}{safe}{TRACE_SUFFIX}")


def worker_part_path(trace_path: str, pid: int) -> str:
    """Side-file path one worker process writes its events to."""
    return f"{trace_path}.w{int(pid)}{WORKER_PART_SUFFIX}"


class Tracer:
    """Per-process span tracer writing JSONL events to one file.

    Parameters
    ----------
    path:
        The event file.  The owner (parent) tracer truncates it on
        construction — one run owns its trace; worker tracers append.
    autoflush:
        Flush every event straight to disk.  Worker-side tracers use
        this because pool workers are terminated without cleanup hooks;
        the parent buffers and flushes on :meth:`finalize`.
    """

    def __init__(self, path: str, autoflush: bool = False, truncate: bool = True) -> None:
        self.path = str(path)
        self.autoflush = bool(autoflush)
        self._pid = os.getpid()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._buffer: List[str] = []
        self._n_events = 0
        self._t0_wall = time.time()
        self._t0_mono = time.perf_counter()
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        if truncate:
            with open(self.path, "w", encoding="utf-8"):
                pass
        self.emit("run", attrs={"t0_unix": round(self._t0_wall, 6)})

    # ------------------------------------------------------------------
    @property
    def n_events(self) -> int:
        """Events emitted so far (buffered, flushed and merged alike)."""
        return self._n_events

    def _now(self) -> float:
        """Monotonic timestamp anchored to this process's wall clock."""
        return self._t0_wall + (time.perf_counter() - self._t0_mono)

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    def emit(
        self,
        type_: str,
        name: Optional[str] = None,
        span_id: Optional[str] = None,
        parent: Optional[str] = None,
        ts: Optional[float] = None,
        dur: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append one event to the buffer (and to disk under autoflush)."""
        event: Dict[str, Any] = {
            "v": TRACE_SCHEMA_VERSION,
            "type": str(type_),
            "pid": self._pid,
            "tid": threading.get_ident(),
            "ts": round(self._now() if ts is None else float(ts), 6),
        }
        if name is not None:
            event["name"] = str(name)
        if span_id is not None:
            event["span"] = str(span_id)
        if parent is not None:
            event["parent"] = str(parent)
        if dur is not None:
            event["dur"] = round(float(dur), 9)
        if attrs:
            event["attrs"] = attrs
        # default=str keeps exotic attr values (numpy scalars, paths)
        # from ever aborting a traced run.
        line = json.dumps(event, sort_keys=True, separators=(",", ":"), default=str)
        with self._lock:
            self._buffer.append(line)
            self._n_events += 1
            if self.autoflush:
                self._flush_locked()

    @contextmanager
    def span(
        self, name: str, start_perf: Optional[float] = None, **attrs: Any
    ) -> Iterator[Dict[str, Any]]:
        """Measure one span; yields its mutable ``attrs`` dict.

        The yielded dict starts as the ambient :func:`trace_context`
        merged under the explicit keyword attrs; callers may add
        attributes discovered during the span (task counts, cache hits).

        ``start_perf`` backdates the span to an earlier
        :func:`time.perf_counter` reading: the span's timestamp and
        duration then cover work that happened *before* the context
        manager was entered (e.g. a phase prepared eagerly but drained
        later), without holding a span open across interleaved phases.
        """
        stack = self._stack()
        span_id = f"{self._pid}-{next(self._ids)}"
        parent = stack[-1] if stack else None
        merged = dict(_CONTEXT)
        merged.update(attrs)
        start = time.perf_counter() if start_perf is None else float(start_perf)
        ts = self._now() - max(0.0, time.perf_counter() - start)
        stack.append(span_id)
        try:
            yield merged
        finally:
            stack.pop()
            self.emit(
                "span",
                name=name,
                span_id=span_id,
                parent=parent,
                ts=ts,
                dur=time.perf_counter() - start,
                attrs=merged,
            )

    # ------------------------------------------------------------------
    def _flush_locked(self) -> None:
        if not self._buffer:
            return
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(self._buffer) + "\n")
        self._buffer.clear()

    def flush(self) -> None:
        """Append all buffered events to the trace file (no fsync)."""
        with self._lock:
            self._flush_locked()

    def merge_worker_parts(self) -> int:
        """Fold worker side files into the main trace file.

        Side files are appended verbatim and deleted; a malformed line
        (a worker killed mid-write) is skipped silently — worker spans
        are observability, not results.  Returns the number of merged
        events.
        """
        merged = 0
        for part in sorted(glob.glob(f"{self.path}.w*{WORKER_PART_SUFFIX}")):
            try:
                with open(part, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError:
                continue
            for line in text.split("\n"):
                line = line.strip()
                if not line:
                    continue
                try:
                    json.loads(line)
                except json.JSONDecodeError:
                    continue
                with self._lock:
                    self._buffer.append(line)
                    self._n_events += 1
                merged += 1
            os.remove(part)
        return merged

    def finalize(self) -> str:
        """Flush, merge worker side files and return the trace path."""
        self.merge_worker_parts()
        self.flush()
        return self.path


# ----------------------------------------------------------------------
# Global tracer and ambient context
# ----------------------------------------------------------------------
_TRACER: Optional[Tracer] = None

#: Ambient attributes merged into every span (see :func:`trace_context`).
_CONTEXT: Dict[str, Any] = {}

_MISSING = object()


def configure_tracing(path: str) -> Tracer:
    """Install the global tracer writing to ``path``.

    Also exports :data:`WORKER_ENV` so worker processes forked/spawned
    *after* this call write side files that :func:`finalize_tracing`
    merges back.  Reconfiguring while a tracer is active finalizes the
    old one first.
    """
    global _TRACER
    if _TRACER is not None:
        finalize_tracing()
    tracer = Tracer(path)
    _TRACER = tracer
    os.environ[WORKER_ENV] = f"{os.path.abspath(path)}|{os.getpid()}"
    return tracer


def get_tracer() -> Optional[Tracer]:
    """The tracer configured in this process (``None`` when disabled)."""
    return _TRACER


def tracing_enabled() -> bool:
    """Whether spans emitted now would be recorded."""
    return _current_tracer() is not None


def finalize_tracing() -> Optional[Tracer]:
    """Flush + merge the global tracer and disable tracing.

    Returns the finalized tracer (its ``path`` / ``n_events`` describe
    what was written), or ``None`` when tracing was never configured.
    """
    global _TRACER
    tracer = _TRACER
    if tracer is None:
        return None
    _TRACER = None
    os.environ.pop(WORKER_ENV, None)
    tracer.finalize()
    return tracer


def _current_tracer() -> Optional[Tracer]:
    """The tracer to emit into: the configured one, or a lazily-created
    worker side-file tracer when :data:`WORKER_ENV` names another
    process as the trace owner.

    A tracer whose pid is not this process's pid is a **fork artefact**:
    pool workers forked from a tracing parent inherit the parent's
    tracer object, and events appended to it would sit in the worker's
    copy of the buffer and be lost.  Such a tracer is discarded here and
    replaced by this worker's own side-file tracer.
    """
    global _TRACER
    if _TRACER is not None and _TRACER._pid == os.getpid():
        return _TRACER
    _TRACER = None
    env = os.environ.get(WORKER_ENV)
    if not env:
        return None
    path, _, owner = env.rpartition("|")
    try:
        owner_pid = int(owner)
    except ValueError:
        return None
    if not path or owner_pid == os.getpid():
        # The owner manages its tracer explicitly; a stale variable in
        # the owner process must not resurrect a finalized trace.
        return None
    _TRACER = Tracer(
        worker_part_path(path, os.getpid()), autoflush=True, truncate=False
    )
    return _TRACER


@contextmanager
def span(
    name: str, start_perf: Optional[float] = None, **attrs: Any
) -> Iterator[Dict[str, Any]]:
    """Record a span on the active tracer; a cheap no-op when disabled.

    Always yields a mutable dict so call sites can unconditionally
    attach attributes; without a tracer the dict is discarded.
    ``start_perf`` backdates the span (see :meth:`Tracer.span`).
    """
    tracer = _current_tracer()
    if tracer is None:
        yield dict(attrs)
        return
    with tracer.span(name, start_perf=start_perf, **attrs) as merged:
        yield merged


@contextmanager
def trace_context(**attrs: Any) -> Iterator[None]:
    """Push ambient span attributes for the duration of the block.

    Every span opened inside (in this process) inherits the keys into
    its ``attrs``; explicit span attrs win on collision.  The engine
    also copies the current context into chunk payload labels, which is
    how worker-process chunk spans learn their campaign cell.
    """
    saved = {key: _CONTEXT.get(key, _MISSING) for key in attrs}
    _CONTEXT.update(attrs)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is _MISSING:
                _CONTEXT.pop(key, None)
            else:
                _CONTEXT[key] = value


def current_context() -> Dict[str, Any]:
    """Copy of the ambient span attributes (for chunk payload labels)."""
    return dict(_CONTEXT)


@dataclass
class RunOutputs:
    """What finalizing a traced run wrote to disk."""

    trace_path: str
    manifest_path: str
    n_events: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace_path": self.trace_path,
            "manifest_path": self.manifest_path,
            "n_events": self.n_events,
        }
