"""Counter/gauge/histogram registry and per-run manifests.

:class:`MetricsRegistry` is a tiny process-local metrics surface: named
counters (cache hits, pool reuses, cells executed), gauges (last seen
values) and histograms (chunk sizes, dispatch latencies, cell seconds).
Instrumented code calls ``get_registry().counter("engine.cache.hits")``
unconditionally — recording is a few attribute operations, cheap enough
to leave on permanently, and a snapshot is only materialised when a run
manifest is written.

A **run manifest** (``<trace>.manifest.json``, schema-versioned) is the
machine-readable sibling of a trace file: the metrics snapshot of the
run, the command that produced it, and the trace file it belongs to.
Nightly artifacts carry both, so counter trajectories (cache hit
ratios, pool reuse counts) can be diffed night over night next to the
``BENCH_*.json`` timings.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional

#: Version of the run-manifest schema; bump on breaking layout changes.
MANIFEST_SCHEMA_VERSION = 1

#: Suffix replacing the trace extension to form the manifest path.
MANIFEST_SUFFIX = ".manifest.json"


class ManifestError(ValueError):
    """A run manifest file is structurally invalid."""


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> int:
        """Add ``amount`` (default 1) and return the new value."""
        self.value += int(amount)
        return self.value


class Gauge:
    """Last-observed-value metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> float:
        self.value = float(value)
        return self.value


class Histogram:
    """Streaming summary of observed values (count/total/min/max).

    Full value retention would make manifests unbounded; the summary
    stays O(1) and still answers the questions the manifests exist for
    (how many, how much in total, how extreme).
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "total": float(self.total),
            "min": float(self.min),
            "max": float(self.max),
            "mean": float(self.mean),
        }


class MetricsRegistry:
    """Named metrics, created on first use.

    A name is bound to one metric kind for the registry's lifetime;
    asking for the same name as a different kind raises — silently
    shadowing a counter with a gauge would corrupt the manifest.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def _get(self, table: Dict[str, object], name: str, factory) -> object:
        name = str(name)
        with self._lock:
            for kind, other in (
                ("counter", self._counters),
                ("gauge", self._gauges),
                ("histogram", self._histograms),
            ):
                if other is not table and name in other:
                    raise ValueError(
                        f"metric {name!r} is already registered as a {kind}"
                    )
            metric = table.get(name)
            if metric is None:
                metric = table[name] = factory()
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(self._gauges, name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(self._histograms, name, Histogram)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view of every metric, name-sorted for stable JSON."""
        with self._lock:
            return {
                "counters": {
                    name: self._counters[name].value
                    for name in sorted(self._counters)
                },
                "gauges": {
                    name: self._gauges[name].value for name in sorted(self._gauges)
                },
                "histograms": {
                    name: self._histograms[name].as_dict()
                    for name in sorted(self._histograms)
                },
            }

    def reset(self) -> None:
        """Drop every metric (a fresh run starts from a clean registry)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-global registry instrumented code records into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def reset_metrics() -> None:
    """Reset the global registry (run boundaries, test isolation)."""
    _REGISTRY.reset()


# ----------------------------------------------------------------------
# Run manifests
# ----------------------------------------------------------------------
def manifest_path_for(trace_path: str) -> str:
    """Manifest path next to a trace file (``t.jsonl`` → ``t.manifest.json``)."""
    root, _ = os.path.splitext(trace_path)
    return root + MANIFEST_SUFFIX


def build_manifest(
    trace_path: Optional[str] = None,
    n_trace_events: Optional[int] = None,
    command: Optional[List[str]] = None,
    registry: Optional[MetricsRegistry] = None,
    created_unix: Optional[float] = None,
) -> Dict[str, object]:
    """Assemble a run-manifest payload from the current metrics."""
    registry = registry if registry is not None else get_registry()
    manifest: Dict[str, object] = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "created_unix": float(time.time() if created_unix is None else created_unix),
        "metrics": registry.snapshot(),
    }
    if trace_path is not None:
        manifest["trace_path"] = str(trace_path)
    if n_trace_events is not None:
        manifest["n_trace_events"] = int(n_trace_events)
    if command is not None:
        manifest["command"] = [str(part) for part in command]
    return manifest


def write_manifest(path: str, manifest: Dict[str, object]) -> str:
    """Validate and write one manifest file; returns the path."""
    validate_manifest(manifest)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def validate_manifest(data: object) -> Dict[str, object]:
    """Structural validation of a manifest payload (raises on mismatch)."""
    if not isinstance(data, dict):
        raise ManifestError("manifest must be a JSON object")
    version = data.get("schema_version")
    if not isinstance(version, int):
        raise ManifestError("manifest is missing an integer 'schema_version'")
    if version > MANIFEST_SCHEMA_VERSION:
        raise ManifestError(
            f"manifest schema version {version} is newer than supported "
            f"{MANIFEST_SCHEMA_VERSION}"
        )
    metrics = data.get("metrics")
    if not isinstance(metrics, dict):
        raise ManifestError("manifest is missing its 'metrics' object")
    for section in ("counters", "gauges", "histograms"):
        table = metrics.get(section)
        if not isinstance(table, dict):
            raise ManifestError(f"manifest metrics lack the {section!r} table")
    for name, value in metrics["counters"].items():
        if not isinstance(value, int) or isinstance(value, bool):
            raise ManifestError(f"counter {name!r} has a non-integer value {value!r}")
    for name, value in metrics["histograms"].items():
        if not isinstance(value, dict) or not {
            "count",
            "total",
            "min",
            "max",
            "mean",
        } <= set(value):
            raise ManifestError(f"histogram {name!r} is missing summary fields")
    return data


def load_manifest(path: str) -> Dict[str, object]:
    """Load and validate one manifest file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise ManifestError(f"cannot read manifest {path!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise ManifestError(f"manifest {path!r} is not valid JSON: {error}") from error
    try:
        return validate_manifest(data)
    except ManifestError as error:
        raise ManifestError(f"manifest {path!r}: {error}") from error
