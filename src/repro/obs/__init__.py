"""repro.obs — structured tracing, metrics, and run manifests.

The observability substrate of the repo: a zero-dependency JSONL span
tracer (:mod:`repro.obs.trace`), a counter/gauge/histogram registry
snapshotted into per-run manifests (:mod:`repro.obs.metrics`), and the
trace analysis/rendering layer behind ``repro trace``
(:mod:`repro.obs.summary`).

This package is a strict stdlib-only leaf: the engine, campaign, bench
and CLI layers all import it, so it must never import them back.

Run lifecycle for entry points::

    outputs = None
    obs.start_run("TRACE_run.jsonl")     # tracer + fresh metrics
    try:
        ...                              # instrumented work
    finally:
        outputs = obs.finish_run(command=sys.argv[1:])
    # outputs.trace_path / outputs.manifest_path / outputs.n_events
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.obs.metrics import (
    MANIFEST_SCHEMA_VERSION,
    MANIFEST_SUFFIX,
    Counter,
    Gauge,
    Histogram,
    ManifestError,
    MetricsRegistry,
    build_manifest,
    get_registry,
    load_manifest,
    manifest_path_for,
    reset_metrics,
    validate_manifest,
    write_manifest,
)
from repro.obs.summary import (
    PhaseRow,
    TraceSummary,
    export_chrome,
    format_summary,
    format_top,
    load_trace,
    span_events,
    summarize_trace,
    top_spans,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    RunOutputs,
    TraceError,
    Tracer,
    configure_tracing,
    current_context,
    default_trace_path,
    finalize_tracing,
    get_tracer,
    span,
    trace_context,
    tracing_enabled,
    worker_part_path,
)

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "MANIFEST_SUFFIX",
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "ManifestError",
    "MetricsRegistry",
    "PhaseRow",
    "RunOutputs",
    "TraceError",
    "TraceSummary",
    "Tracer",
    "build_manifest",
    "configure_tracing",
    "current_context",
    "default_trace_path",
    "export_chrome",
    "finalize_tracing",
    "finish_run",
    "format_summary",
    "format_top",
    "get_registry",
    "get_tracer",
    "load_manifest",
    "load_trace",
    "manifest_path_for",
    "reset_metrics",
    "span",
    "span_events",
    "start_run",
    "summarize_trace",
    "top_spans",
    "trace_context",
    "tracing_enabled",
    "validate_manifest",
    "worker_part_path",
    "write_manifest",
]


def start_run(trace_path: str) -> Tracer:
    """Begin a traced run: install the tracer, reset the metrics."""
    reset_metrics()
    return configure_tracing(trace_path)


def finish_run(command: Optional[List[str]] = None) -> Optional[RunOutputs]:
    """Finalize the traced run and write its manifest next to the trace.

    Returns ``None`` when no run was started (tracing disabled), so
    entry points can call it unconditionally from a ``finally`` block.
    """
    tracer = finalize_tracing()
    if tracer is None:
        return None
    if command is None:
        command = list(sys.argv[1:])
    manifest = build_manifest(
        trace_path=tracer.path,
        n_trace_events=tracer.n_events,
        command=command,
    )
    manifest_path = write_manifest(manifest_path_for(tracer.path), manifest)
    return RunOutputs(
        trace_path=tracer.path,
        manifest_path=manifest_path,
        n_events=tracer.n_events,
    )
