"""Trace-file analysis: per-cell/per-phase breakdowns, slowest spans,
Chrome trace export.

The renderers behind ``repro trace summary|top|export``:

* :func:`load_trace` parses and schema-validates a JSONL trace file
  (tolerating only the classic kill-mid-write artefact: an unparseable
  final line in a file that does not end with a newline).
* :func:`summarize_trace` folds the ``engine.phase`` spans into
  :class:`PhaseRow` s keyed by ``(cell, phase)``.  *Wall* seconds are
  the phase spans' durations (what :meth:`EngineStats.total_seconds`
  measures, so the summary total and the engine stats agree); *work*
  seconds sum the matching ``engine.chunk`` spans — on parallel
  executors work exceeds wall (that is the speedup), serially they are
  nearly equal.  ``self`` is the wall clock not covered by chunk work
  (cache lookups, chunk assembly, result reduction), clamped at zero
  for parallel runs.
* :func:`top_spans` ranks the slowest spans (default: all names) —
  the "which chunk stalled" view.
* :func:`export_chrome` converts a trace into the Chrome trace-event
  JSON consumed by ``chrome://tracing`` and Perfetto.

Rows and cells keep **first-appearance order**: events are appended in
execution order, so phases come out in flow order and cells in campaign
execution order without this module having to know either.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.trace import TRACE_SCHEMA_VERSION, TraceError

#: Placeholder cell label for spans recorded outside any campaign cell.
NO_CELL = "-"

#: Span names the summary aggregates.
PHASE_SPAN = "engine.phase"
CHUNK_SPAN = "engine.chunk"


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Parse and validate one JSONL trace file.

    A malformed **final** line is ignored silently only when the file
    does not end with a newline (events and their terminating newline
    are written together, so only an interrupted append can leave
    that artefact); malformed content anywhere else raises
    :class:`TraceError`.
    """
    if not os.path.exists(path):
        raise TraceError(f"trace file {path!r} does not exist")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise TraceError(f"cannot read trace {path!r}: {error}") from error
    lines = text.split("\n")
    newline_terminated = text.endswith("\n")
    while lines and lines[-1] == "":
        lines.pop()
    events: List[Dict[str, Any]] = []
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            event = _validate_event(json.loads(line))
        except (json.JSONDecodeError, TraceError) as error:
            if position == len(lines) - 1 and not newline_terminated:
                break
            raise TraceError(
                f"trace {path!r} line {position + 1} is corrupt: {error}"
            ) from None
        events.append(event)
    return events


def _validate_event(event: object) -> Dict[str, Any]:
    if not isinstance(event, dict):
        raise TraceError("trace event must be a JSON object")
    version = event.get("v")
    if not isinstance(version, int):
        raise TraceError("trace event is missing an integer schema version 'v'")
    if version > TRACE_SCHEMA_VERSION:
        raise TraceError(
            f"trace event schema version {version} is newer than supported "
            f"{TRACE_SCHEMA_VERSION}"
        )
    if not isinstance(event.get("type"), str):
        raise TraceError("trace event is missing its string 'type'")
    if event["type"] == "span":
        if not isinstance(event.get("name"), str):
            raise TraceError("span event is missing its 'name'")
        if not isinstance(event.get("span"), str):
            raise TraceError("span event is missing its 'span' id")
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0.0:
            raise TraceError("span event needs a non-negative 'dur'")
    return event


def span_events(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The span events of a trace, in file order."""
    return [event for event in events if event.get("type") == "span"]


def _attr(event: Dict[str, Any], key: str, default: str) -> str:
    attrs = event.get("attrs")
    if isinstance(attrs, dict) and key in attrs:
        return str(attrs[key])
    return default


# ----------------------------------------------------------------------
# Per-cell / per-phase summary
# ----------------------------------------------------------------------
@dataclass
class PhaseRow:
    """Aggregated timing of one ``(cell, phase)`` pair."""

    cell: str
    phase: str
    n_spans: int = 0
    wall_seconds: float = 0.0
    work_seconds: float = 0.0
    n_chunks: int = 0

    @property
    def self_seconds(self) -> float:
        """Wall clock not covered by chunk work (clamped at zero: on
        parallel executors the chunks' summed work exceeds the wall)."""
        return max(0.0, self.wall_seconds - self.work_seconds)

    def as_dict(self) -> Dict[str, object]:
        return {
            "cell": self.cell,
            "phase": self.phase,
            "n_spans": self.n_spans,
            "wall_seconds": self.wall_seconds,
            "work_seconds": self.work_seconds,
            "self_seconds": self.self_seconds,
            "n_chunks": self.n_chunks,
        }


@dataclass
class TraceSummary:
    """The per-cell/per-phase breakdown of one trace."""

    rows: List[PhaseRow] = field(default_factory=list)
    n_events: int = 0
    n_spans: int = 0

    @property
    def total_wall_seconds(self) -> float:
        """Summed phase wall clock — comparable to
        :meth:`repro.engine.EngineStats.total_seconds`."""
        return float(sum(row.wall_seconds for row in self.rows))

    def cell_seconds(self) -> Dict[str, float]:
        """Per-cell wall totals, in first-appearance order."""
        totals: Dict[str, float] = {}
        for row in self.rows:
            totals[row.cell] = totals.get(row.cell, 0.0) + row.wall_seconds
        return totals

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "n_events": self.n_events,
            "n_spans": self.n_spans,
            "total_wall_seconds": self.total_wall_seconds,
            "cell_seconds": self.cell_seconds(),
            "rows": [row.as_dict() for row in self.rows],
        }


def summarize_trace(events: List[Dict[str, Any]]) -> TraceSummary:
    """Fold a trace's engine spans into a :class:`TraceSummary`."""
    spans = span_events(events)
    rows: Dict[tuple, PhaseRow] = {}
    for event in spans:
        if event["name"] != PHASE_SPAN:
            continue
        key = (_attr(event, "cell", NO_CELL), _attr(event, "phase", event["name"]))
        row = rows.get(key)
        if row is None:
            row = rows[key] = PhaseRow(cell=key[0], phase=key[1])
        row.n_spans += 1
        row.wall_seconds += float(event["dur"])
    for event in spans:
        if event["name"] != CHUNK_SPAN:
            continue
        key = (_attr(event, "cell", NO_CELL), _attr(event, "phase", NO_CELL))
        row = rows.get(key)
        if row is None:
            # A chunk with no surrounding phase span (foreign trace);
            # surface it as its own row rather than dropping the time.
            row = rows[key] = PhaseRow(cell=key[0], phase=key[1])
        row.work_seconds += float(event["dur"])
        row.n_chunks += 1
    return TraceSummary(
        rows=list(rows.values()), n_events=len(events), n_spans=len(spans)
    )


def format_summary(summary: TraceSummary) -> str:
    """Plain-text rendering of a :class:`TraceSummary`."""
    cell_width = max([12] + [len(row.cell) for row in summary.rows]) + 2
    lines = [
        f"{'cell':<{cell_width}}{'phase':<18}{'spans':>6}{'chunks':>8}"
        f"{'wall s':>10}{'work s':>10}{'self s':>10}"
    ]
    for row in summary.rows:
        lines.append(
            f"{row.cell:<{cell_width}}{row.phase:<18}{row.n_spans:>6}{row.n_chunks:>8}"
            f"{row.wall_seconds:>10.3f}{row.work_seconds:>10.3f}"
            f"{row.self_seconds:>10.3f}"
        )
    cells = summary.cell_seconds()
    if len(cells) > 1:
        lines.append("")
        for cell, seconds in cells.items():
            lines.append(
                f"{cell:<{cell_width + 18}}{'cell total':>14}{seconds:>10.3f}"
            )
    lines.append("")
    lines.append(
        f"total wall {summary.total_wall_seconds:.3f} s over "
        f"{summary.n_spans} span(s), {summary.n_events} event(s)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Slowest spans
# ----------------------------------------------------------------------
def top_spans(
    events: List[Dict[str, Any]], count: int = 10, name: Optional[str] = None
) -> List[Dict[str, Any]]:
    """The ``count`` slowest spans, optionally filtered by span name."""
    spans = span_events(events)
    if name is not None:
        spans = [event for event in spans if event["name"] == name]
    spans.sort(key=lambda event: (-float(event["dur"]), str(event["span"])))
    return spans[: max(0, int(count))]


def format_top(spans: List[Dict[str, Any]]) -> str:
    """Plain-text rendering of :func:`top_spans` output."""
    lines = [f"{'dur s':>10}  {'name':<16}{'pid':>8}  attrs"]
    for event in spans:
        attrs = event.get("attrs") or {}
        rendered = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
        lines.append(
            f"{float(event['dur']):>10.4f}  {event['name']:<16}"
            f"{event.get('pid', 0):>8}  {rendered}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
def export_chrome(events: List[Dict[str, Any]]) -> Dict[str, object]:
    """Convert a trace to Chrome trace-event JSON (``chrome://tracing``).

    Timestamps are re-based to the earliest event so the viewer opens
    at zero instead of at the Unix epoch.
    """
    spans = span_events(events)
    t0 = min((float(event["ts"]) for event in spans), default=0.0)
    trace_events = []
    for event in spans:
        trace_events.append(
            {
                "name": event["name"],
                "ph": "X",
                "ts": (float(event["ts"]) - t0) * 1e6,
                "dur": float(event["dur"]) * 1e6,
                "pid": int(event.get("pid", 0)),
                "tid": int(event.get("tid", event.get("pid", 0))),
                "args": event.get("attrs") or {},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
