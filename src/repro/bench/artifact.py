"""Versioned JSON benchmark artifacts (``BENCH_<label>.json``).

One :class:`BenchArtifact` is the machine-readable record of one
benchmark run: which scenarios ran, the total wall-clock seconds of
every repeat, the per-phase engine timings of the best repeat
(canonical phases, see :data:`repro.engine.PHASE_ORDER`) and a small
set of result metrics that let the gate notice when a "speedup" changed
what is being computed.

The schema is versioned (:data:`SCHEMA_VERSION`); :func:`load_artifact`
validates structurally before constructing, so a gate run fails with a
clear :class:`ArtifactError` instead of a stack trace when handed a
foreign or truncated file.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._version import __version__
from repro.bench.scenarios import Scenario

#: Version of the artifact schema; bump on breaking layout changes.
#: Version 2 added the optional ``kind``/``dispatch`` scenario params
#: (campaign-dispatch benchmarks); version-1 artifacts still load — the
#: missing params take their schema-1-equivalent defaults.
SCHEMA_VERSION = 2

#: Prefix/suffix of artifact file names (``BENCH_<label>.json``).
ARTIFACT_PREFIX = "BENCH_"
ARTIFACT_SUFFIX = ".json"


class ArtifactError(ValueError):
    """A benchmark artifact is structurally invalid."""


def default_artifact_path(label: str, directory: str = ".") -> str:
    """Canonical artifact path ``<directory>/BENCH_<label>.json``."""
    safe = "".join(c if (c.isalnum() or c in "-_.") else "-" for c in label)
    return os.path.join(directory, f"{ARTIFACT_PREFIX}{safe}{ARTIFACT_SUFFIX}")


def collect_environment() -> Dict[str, object]:
    """Environment fingerprint stored inside every artifact."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "repro_version": __version__,
    }


@dataclass
class ScenarioRecord:
    """Measurements of one scenario.

    Attributes
    ----------
    scenario:
        The scenario that was run.
    total_seconds:
        Wall-clock seconds of every timed repeat (never empty).
    phase_seconds:
        Canonical per-phase engine seconds of the *best* repeat.
    metrics:
        Scalar result metrics (buffer counts, yields) guarding against
        benchmarks that got faster by computing something else.
    plan_fingerprint:
        Hex digest over the resulting buffer plan; identical inputs must
        produce identical fingerprints regardless of executor.
    """

    scenario: Scenario
    total_seconds: List[float]
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    plan_fingerprint: str = ""

    @property
    def best_seconds(self) -> float:
        """Fastest repeat (the comparison statistic; robust to noise)."""
        return float(min(self.total_seconds))

    def as_dict(self) -> Dict[str, object]:
        return {
            "id": self.scenario.scenario_id,
            "params": self.scenario.as_dict(),
            "total_seconds": [float(s) for s in self.total_seconds],
            "best_seconds": self.best_seconds,
            "phase_seconds": {k: float(v) for k, v in self.phase_seconds.items()},
            "metrics": {k: float(v) for k, v in self.metrics.items()},
            "plan_fingerprint": self.plan_fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioRecord":
        try:
            scenario = Scenario.from_dict(dict(data["params"]))
        except (TypeError, ValueError) as error:
            raise ArtifactError(f"invalid scenario parameters: {error}") from error
        record = cls(
            scenario=scenario,
            total_seconds=[float(s) for s in data["total_seconds"]],
            phase_seconds={k: float(v) for k, v in dict(data.get("phase_seconds", {})).items()},
            metrics={k: float(v) for k, v in dict(data.get("metrics", {})).items()},
            plan_fingerprint=str(data.get("plan_fingerprint", "")),
        )
        declared = data.get("id")
        if declared is not None and declared != record.scenario.scenario_id:
            raise ArtifactError(
                f"scenario id {declared!r} does not match its parameters "
                f"({record.scenario.scenario_id!r})"
            )
        return record


@dataclass
class BenchArtifact:
    """One complete benchmark run, serialisable to ``BENCH_<label>.json``.

    ``obs`` is an optional observability attachment (the run's metrics
    snapshot and trace pointer, see :mod:`repro.obs`); it is serialised
    only when non-empty, so artifacts of untraced runs stay byte-stable
    against earlier schema-1 files.
    """

    label: str
    suite: str
    records: List[ScenarioRecord] = field(default_factory=list)
    warmup: int = 1
    repeat: int = 1
    created_unix: float = 0.0
    environment: Dict[str, object] = field(default_factory=collect_environment)
    schema_version: int = SCHEMA_VERSION
    obs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.created_unix:
            self.created_unix = time.time()

    # ------------------------------------------------------------------
    def record_for(self, scenario_id: str) -> Optional[ScenarioRecord]:
        """The record of one scenario id, if present."""
        for record in self.records:
            if record.scenario.scenario_id == scenario_id:
                return record
        return None

    def scenario_ids(self) -> List[str]:
        return [record.scenario.scenario_id for record in self.records]

    def total_seconds(self) -> float:
        """Sum of the best repeats over all scenarios."""
        return float(sum(record.best_seconds for record in self.records))

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "schema_version": self.schema_version,
            "label": self.label,
            "suite": self.suite,
            "created_unix": float(self.created_unix),
            "environment": dict(self.environment),
            "warmup": int(self.warmup),
            "repeat": int(self.repeat),
            "scenarios": [record.as_dict() for record in self.records],
        }
        if self.obs:
            data["obs"] = dict(self.obs)
        return data

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str) -> str:
        """Write the artifact to ``path`` and return the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
        return path

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchArtifact":
        validate_artifact_dict(data)
        return cls(
            label=str(data["label"]),
            suite=str(data["suite"]),
            records=[ScenarioRecord.from_dict(entry) for entry in data["scenarios"]],
            warmup=int(data.get("warmup", 0)),
            repeat=int(data.get("repeat", 1)),
            created_unix=float(data.get("created_unix", 0.0)) or 1.0,
            environment=dict(data.get("environment", {})),
            schema_version=int(data["schema_version"]),
            obs=dict(data.get("obs", {})),
        )


def validate_artifact_dict(data: object) -> None:
    """Structural schema validation; raises :class:`ArtifactError`."""
    if not isinstance(data, dict):
        raise ArtifactError("artifact must be a JSON object")
    version = data.get("schema_version")
    if not isinstance(version, int):
        raise ArtifactError("artifact is missing an integer 'schema_version'")
    if version > SCHEMA_VERSION:
        raise ArtifactError(
            f"artifact schema version {version} is newer than supported {SCHEMA_VERSION}"
        )
    for key in ("label", "suite"):
        if not isinstance(data.get(key), str):
            raise ArtifactError(f"artifact is missing the string field {key!r}")
    scenarios = data.get("scenarios")
    if not isinstance(scenarios, list):
        raise ArtifactError("artifact is missing the 'scenarios' list")
    obs = data.get("obs")
    if obs is not None and not isinstance(obs, dict):
        raise ArtifactError("artifact field 'obs' must be an object when present")
    param_types = {
        "circuit": str,
        "scale": (int, float),
        "sigma": (int, float),
        "solver": str,
        "executor": str,
        "jobs": (int, type(None)),
        "n_samples": int,
        "n_eval_samples": int,
        "seed": int,
    }
    # Schema-2 additions: optional so schema-1 artifacts keep validating
    # (Scenario.from_dict fills in the schema-1-equivalent defaults).
    optional_param_types = {
        "kind": str,
        "dispatch": str,
    }
    seen = set()
    for position, entry in enumerate(scenarios):
        if not isinstance(entry, dict):
            raise ArtifactError(f"scenario #{position} must be an object")
        params = entry.get("params")
        if not isinstance(params, dict):
            raise ArtifactError(f"scenario #{position} is missing its 'params' object")
        for name, expected in param_types.items():
            if name not in params:
                raise ArtifactError(f"scenario #{position} params lack {name!r}")
            value = params[name]
            if not isinstance(value, expected) or isinstance(value, bool):
                raise ArtifactError(
                    f"scenario #{position} param {name!r} has invalid value {value!r}"
                )
        for name, expected in optional_param_types.items():
            if name in params and not isinstance(params[name], expected):
                raise ArtifactError(
                    f"scenario #{position} param {name!r} has invalid value {params[name]!r}"
                )
        totals = entry.get("total_seconds")
        if (
            not isinstance(totals, list)
            or not totals
            or not all(isinstance(s, (int, float)) and s >= 0.0 for s in totals)
        ):
            raise ArtifactError(
                f"scenario #{position} needs a non-empty 'total_seconds' list of >= 0 numbers"
            )
        phases = entry.get("phase_seconds", {})
        if not isinstance(phases, dict) or not all(
            isinstance(v, (int, float)) and v >= 0.0 for v in phases.values()
        ):
            raise ArtifactError(f"scenario #{position} has an invalid 'phase_seconds' mapping")
        # Entries without a declared id are identified by their params
        # (ScenarioRecord.from_dict accepts a missing 'id').
        identifier = entry.get("id")
        if identifier is None:
            identifier = tuple(sorted((k, repr(v)) for k, v in params.items()))
        if identifier in seen:
            raise ArtifactError(f"duplicate scenario id {entry.get('id')!r}")
        seen.add(identifier)


def load_artifact(path: str) -> BenchArtifact:
    """Load and validate one artifact file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise ArtifactError(f"cannot read artifact {path!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise ArtifactError(f"artifact {path!r} is not valid JSON: {error}") from error
    try:
        return BenchArtifact.from_dict(data)
    except ArtifactError as error:
        raise ArtifactError(f"artifact {path!r}: {error}") from error
