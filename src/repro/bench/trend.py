"""Cross-run benchmark trends: nightly ``BENCH_*.json`` into series.

The campaign layer already grows night-over-night series out of a
store's append history (:mod:`repro.campaign.trend`).  This module is
the bench-side twin, built on the *same* storage machinery one level
down: a trend store is any :mod:`repro.store` backend (``jsonl:`` /
``sqlite:`` URI) opened with a bench-point validator, and accumulation
reuses the backends' idempotent :meth:`~repro.store.StoreBackend.ingest`
— re-ingesting an artifact adds nothing, so a cron job can feed every
downloaded nightly artifact without bookkeeping which ones are new.

Each ingested point is one scenario of one artifact: fingerprinted over
``(label, created_unix, scenario_id)`` — the identity of a measurement,
not its values — and carrying the best repeat, the full repeat list and
the plan fingerprint.  The series view groups points by scenario id
across runs, ordered by artifact creation time, so it answers the two
trajectory questions directly: *is this scenario drifting slower night
over night* and *did its plan fingerprint ever change* (a fingerprint
flip without a code change is a determinism bug, not a perf story).

CLI surface: ``repro bench trend --store URI [--ingest BENCH_*.json ...]``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench.artifact import BenchArtifact, ScenarioRecord, load_artifact
from repro.bench.scenarios import Scenario
from repro.store import StoreBackend, StoreError, open_store

#: Version of the bench trend-point record envelope.
TREND_SCHEMA_VERSION = 1


class BenchTrendError(StoreError):
    """A bench trend store or trend-point record is structurally invalid."""


def validate_trend_record(record: object) -> Dict[str, object]:
    """Structural validation of one trend-point record."""
    if not isinstance(record, dict):
        raise BenchTrendError("trend record must be a JSON object")
    for key, expected in (
        ("fingerprint", str),
        ("scenario_id", str),
        ("label", str),
        ("suite", str),
        ("params", dict),
        ("created_unix", (int, float)),
        ("best_seconds", (int, float)),
        ("total_seconds", list),
        ("plan_fingerprint", str),
    ):
        value = record.get(key)
        if not isinstance(value, expected) or isinstance(value, bool):
            raise BenchTrendError(f"trend record field {key!r} has invalid value {value!r}")
    if not record["fingerprint"]:
        raise BenchTrendError("trend record is missing its 'fingerprint'")
    return record


def open_trend_store(uri: str) -> StoreBackend:
    """Open a bench trend store (any :mod:`repro.store` driver URI)."""
    return open_store(uri, validator=validate_trend_record, error=BenchTrendError)


def point_record(artifact: BenchArtifact, record: ScenarioRecord) -> Dict[str, object]:
    """One scenario of one artifact as an ingestable trend point.

    The fingerprint hashes the *identity* of the measurement — which
    run, which scenario — not its values: the same artifact re-ingested
    is a no-op, while a re-run of the same scenario (fresh
    ``created_unix``) is a new point.
    """
    identity = json.dumps(
        {
            "label": artifact.label,
            "created_unix": float(artifact.created_unix),
            "scenario_id": record.scenario.scenario_id,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return {
        "schema_version": TREND_SCHEMA_VERSION,
        "fingerprint": hashlib.sha256(identity.encode("utf-8")).hexdigest()[:16],
        "scenario_id": record.scenario.scenario_id,
        "label": artifact.label,
        "suite": artifact.suite,
        "params": record.scenario.as_dict(),
        "created_unix": float(artifact.created_unix),
        "best_seconds": record.best_seconds,
        "total_seconds": [float(s) for s in record.total_seconds],
        "plan_fingerprint": record.plan_fingerprint,
    }


def ingest_artifacts(store: StoreBackend, paths: List[str]) -> int:
    """Fold ``BENCH_*.json`` files into the trend store (idempotent).

    Returns the number of points that were actually new.  Artifacts are
    validated on load, so a truncated nightly download fails loudly
    instead of polluting the series.
    """
    n_new = 0
    for path in paths:
        artifact = load_artifact(path)
        for record in artifact.records:
            if store.ingest(point_record(artifact, record)):
                n_new += 1
    return n_new


@dataclass
class BenchTrendPoint:
    """One measured run of one scenario (one artifact's record of it)."""

    created_unix: float
    label: str
    best_seconds: float
    plan_fingerprint: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "created_unix": self.created_unix,
            "label": self.label,
            "best_seconds": self.best_seconds,
            "plan_fingerprint": self.plan_fingerprint,
        }


@dataclass
class ScenarioTrend:
    """The run-over-run series of one benchmark scenario."""

    scenario_id: str
    points: List[BenchTrendPoint] = field(default_factory=list)

    @property
    def n_points(self) -> int:
        return len(self.points)

    def best_seconds(self) -> List[float]:
        return [point.best_seconds for point in self.points]

    def plan_fingerprints(self) -> List[str]:
        return [point.plan_fingerprint for point in self.points if point.plan_fingerprint]

    @property
    def plan_is_stable(self) -> bool:
        """Whether every recorded run produced the same plan fingerprint."""
        return len(set(self.plan_fingerprints())) <= 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario_id": self.scenario_id,
            "n_points": self.n_points,
            "plan_is_stable": self.plan_is_stable,
            "points": [point.as_dict() for point in self.points],
        }


@dataclass
class BenchTrend:
    """Per-scenario series over one trend store's accumulated points."""

    store: str
    scenarios: List[ScenarioTrend] = field(default_factory=list)

    @property
    def n_scenarios(self) -> int:
        return len(self.scenarios)

    @property
    def n_points(self) -> int:
        return sum(scenario.n_points for scenario in self.scenarios)

    def as_dict(self) -> Dict[str, object]:
        return {
            "store": self.store,
            "n_scenarios": self.n_scenarios,
            "n_points": self.n_points,
            "scenarios": [scenario.as_dict() for scenario in self.scenarios],
        }


def build_bench_trend(
    store: StoreBackend, scenario_id: Optional[str] = None
) -> BenchTrend:
    """Assemble per-scenario series from the trend store's history.

    Scenarios appear in their deterministic suite order (the same
    :meth:`~repro.bench.scenarios.Scenario.sort_key` every artifact
    uses); each scenario's points are ordered by artifact creation time,
    ingest order breaking ties.  ``scenario_id`` restricts the view.
    """
    series: Dict[str, ScenarioTrend] = {}
    order: Dict[str, Tuple] = {}
    for record in store.history():
        identifier = str(record["scenario_id"])
        if scenario_id is not None and identifier != scenario_id:
            continue
        trend = series.get(identifier)
        if trend is None:
            trend = ScenarioTrend(scenario_id=identifier)
            series[identifier] = trend
            order[identifier] = Scenario.from_dict(dict(record["params"])).sort_key()
        trend.points.append(
            BenchTrendPoint(
                created_unix=float(record["created_unix"]),
                label=str(record["label"]),
                best_seconds=float(record["best_seconds"]),
                plan_fingerprint=str(record["plan_fingerprint"]),
            )
        )
    for trend in series.values():
        indexed = list(enumerate(trend.points))
        indexed.sort(key=lambda pair: (pair[1].created_unix, pair[0]))
        trend.points = [point for _, point in indexed]
    scenarios = sorted(series.values(), key=lambda trend: order[trend.scenario_id])
    return BenchTrend(store=store.uri, scenarios=scenarios)


def format_bench_trend(trend: BenchTrend) -> str:
    """Plain-text rendering: one line per scenario, series summarised."""
    lines = [
        f"store     : {trend.store}",
        f"scenarios : {trend.n_scenarios} with {trend.n_points} recorded run(s)",
    ]
    for scenario in trend.scenarios:
        seconds = scenario.best_seconds()
        first, last = seconds[0], seconds[-1]
        if first > 0:
            delta = 100.0 * (last - first) / first
            timing = f"best {first:.3f}s -> {last:.3f}s ({delta:+.1f}%)"
        else:
            timing = f"best {first:.3f}s -> {last:.3f}s"
        plan = "plan stable" if scenario.plan_is_stable else "plan DRIFTED"
        lines.append(
            f"  {scenario.scenario_id}: {scenario.n_points} run(s), {timing}, {plan}"
        )
    return "\n".join(lines) + "\n"


__all__ = [
    "BenchTrend",
    "BenchTrendError",
    "BenchTrendPoint",
    "ScenarioTrend",
    "TREND_SCHEMA_VERSION",
    "build_bench_trend",
    "format_bench_trend",
    "ingest_artifacts",
    "open_trend_store",
    "point_record",
    "validate_trend_record",
]
