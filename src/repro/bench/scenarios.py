"""Benchmark scenario matrix.

A :class:`Scenario` pins down everything that influences the runtime of
one flow run: the circuit and its scale, the target-period sigma, the
per-sample solver backend, the engine executor and worker count, the
sample counts and the seed.  Scenarios are hashable value objects with a
stable :attr:`~Scenario.scenario_id`, which is the join key used by the
artifact comparison and the CI regression gate.

Suites are named, **deterministically ordered** collections of
scenarios: :func:`get_suite` always returns the same scenarios in the
same order, independent of how the suite was declared (the order is the
scenarios' :meth:`~Scenario.sort_key`).  :func:`scenario_matrix` builds
the cross product circuit x scale x sigma x solver x executor that the
larger suites are declared with.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import FlowConfig

#: Artifact/scenario fields that identify one scenario (serialisation order).
#: ``kind``/``dispatch`` arrived with artifact schema 2; their defaults
#: reproduce the schema-1 semantics so old artifacts keep loading.
PARAM_FIELDS = (
    "circuit",
    "scale",
    "sigma",
    "solver",
    "executor",
    "jobs",
    "n_samples",
    "n_eval_samples",
    "seed",
    "kind",
    "dispatch",
)

#: What one scenario times: a single flow run, or a whole multi-cell
#: campaign exercising the runner's dispatch strategy.
KIND_CHOICES = ("flow", "campaign")

#: Campaign dispatch strategies (mirrors ``repro.campaign.DISPATCH_CHOICES``
#: without importing the campaign subsystem at scenario-definition time).
DISPATCH_CHOICES = ("batched", "sequential")


@dataclass(frozen=True)
class Scenario:
    """One cell of the benchmark matrix (everything that affects runtime).

    ``kind`` selects what is timed: ``"flow"`` (one
    :class:`~repro.core.flow.BufferInsertionFlow` run — the historical
    meaning) or ``"campaign"`` (a small multi-cell
    :class:`~repro.campaign.runner.CampaignRunner` matrix exercising the
    hot dispatch path).  ``dispatch`` only matters for campaign
    scenarios; flow scenarios ignore it and keep their schema-1 ids.
    """

    circuit: str
    scale: float
    sigma: float = 0.0
    solver: str = "graph"
    executor: str = "serial"
    jobs: Optional[int] = None
    n_samples: int = 60
    n_eval_samples: int = 100
    seed: int = 3
    kind: str = "flow"
    dispatch: str = "batched"

    def __post_init__(self) -> None:
        if self.kind not in KIND_CHOICES:
            raise ValueError(f"kind must be one of {KIND_CHOICES}, got {self.kind!r}")
        if self.dispatch not in DISPATCH_CHOICES:
            raise ValueError(
                f"dispatch must be one of {DISPATCH_CHOICES}, got {self.dispatch!r}"
            )

    @property
    def scenario_id(self) -> str:
        """Stable identifier; the join key of artifact comparisons.

        Flow scenarios keep their schema-1 id verbatim, so artifacts
        written before ``kind`` existed still join against new baselines;
        campaign scenarios append a ``/campaign-<dispatch>`` segment.
        """
        jobs = "auto" if self.jobs is None else str(self.jobs)
        base = (
            f"{self.circuit}@{self.scale:g}"
            f"/sigma{self.sigma:g}"
            f"/{self.solver}"
            f"/{self.executor}x{jobs}"
            f"/n{self.n_samples}e{self.n_eval_samples}s{self.seed}"
        )
        if self.kind == "campaign":
            base += f"/campaign-{self.dispatch}"
        return base

    def sort_key(self) -> Tuple:
        """Deterministic ordering key (suite order is always this)."""
        return (
            self.circuit,
            self.scale,
            self.sigma,
            self.solver,
            self.executor,
            -1 if self.jobs is None else self.jobs,
            self.n_samples,
            self.n_eval_samples,
            self.seed,
            self.kind,
            self.dispatch,
        )

    def flow_config(self) -> FlowConfig:
        """The :class:`~repro.core.config.FlowConfig` this scenario runs."""
        return FlowConfig(
            n_samples=self.n_samples,
            n_eval_samples=self.n_eval_samples,
            seed=self.seed,
            target_sigma=self.sigma,
            solver=self.solver,
            executor=self.executor,
            jobs=self.jobs,
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable parameter mapping (see :data:`PARAM_FIELDS`)."""
        return {name: getattr(self, name) for name in PARAM_FIELDS}

    @classmethod
    def from_dict(cls, params: Dict[str, object]) -> "Scenario":
        """Inverse of :meth:`as_dict` (unknown keys are rejected)."""
        unknown = set(params) - set(PARAM_FIELDS)
        if unknown:
            raise ValueError(f"unknown scenario parameters: {sorted(unknown)}")
        return cls(**params)  # type: ignore[arg-type]


def scenario_matrix(
    circuits: Sequence[Tuple[str, float]],
    sigmas: Sequence[float] = (0.0,),
    solvers: Sequence[str] = ("graph",),
    executors: Sequence[Tuple[str, Optional[int]]] = (("serial", None),),
    n_samples: int = 60,
    n_eval_samples: int = 100,
    seed: int = 3,
) -> List[Scenario]:
    """Cross product circuit x sigma x solver x executor, sorted.

    ``circuits`` are ``(name, scale)`` pairs and ``executors`` are
    ``(executor, jobs)`` pairs.
    """
    scenarios = [
        Scenario(
            circuit=circuit,
            scale=scale,
            sigma=sigma,
            solver=solver,
            executor=executor,
            jobs=jobs,
            n_samples=n_samples,
            n_eval_samples=n_eval_samples,
            seed=seed,
        )
        for (circuit, scale), sigma, solver, (executor, jobs) in product(
            circuits, sigmas, solvers, executors
        )
    ]
    return sort_scenarios(scenarios)


def sort_scenarios(scenarios: Iterable[Scenario]) -> List[Scenario]:
    """Deterministic suite order (and duplicate rejection)."""
    ordered = sorted(scenarios, key=Scenario.sort_key)
    seen = set()
    for scenario in ordered:
        if scenario.scenario_id in seen:
            raise ValueError(f"duplicate scenario {scenario.scenario_id!r}")
        seen.add(scenario.scenario_id)
    return ordered


# ----------------------------------------------------------------------
# Named suites
# ----------------------------------------------------------------------
def _quick_suite() -> List[Scenario]:
    # Small enough for a CI smoke run (a few seconds end to end) while
    # still covering both target tightnesses and a parallel executor.
    return sort_scenarios(
        scenario_matrix(
            circuits=[("s9234", 0.05)],
            sigmas=(0.0, 1.0),
            executors=(("serial", None),),
            n_samples=60,
            n_eval_samples=100,
        )
        + [
            Scenario(
                circuit="s9234",
                scale=0.05,
                sigma=1.0,
                executor="processes",
                jobs=2,
                n_samples=60,
                n_eval_samples=100,
            )
        ]
        # The campaign hot path, both dispatch strategies over the same
        # multi-cell matrix: the pair measures the batched-gang speedup
        # and its identical plan fingerprints guard bit-identity.
        + [
            Scenario(
                circuit="s9234",
                scale=0.05,
                sigma=1.0,
                executor="processes",
                jobs=2,
                n_samples=40,
                n_eval_samples=80,
                kind="campaign",
                dispatch=dispatch,
            )
            for dispatch in DISPATCH_CHOICES
        ]
    )


def _default_suite() -> List[Scenario]:
    return sort_scenarios(
        scenario_matrix(
            circuits=[("s9234", 0.1), ("s13207", 0.05)],
            sigmas=(0.0, 1.0, 2.0),
            executors=(("serial", None), ("processes", None)),
            n_samples=150,
            n_eval_samples=300,
        )
        # One larger-scale workload exercising the array-native kernel:
        # hundreds of sequential edges evaluated as single matmuls, with
        # level-batched Clark sweeps paying off in the (cached) compile.
        + [
            Scenario(
                circuit="s9234",
                scale=0.4,
                sigma=1.0,
                executor="serial",
                n_samples=150,
                n_eval_samples=300,
            )
        ]
    )


def _full_suite() -> List[Scenario]:
    return sort_scenarios(
        scenario_matrix(
            circuits=[("s9234", 0.18), ("s13207", 0.1), ("usb_funct", 0.05)],
            sigmas=(0.0, 1.0, 2.0),
            solvers=("graph",),
            executors=(("serial", None), ("threads", None), ("processes", None)),
            n_samples=300,
            n_eval_samples=600,
        )
        # The faithful big-M MILP backend is orders of magnitude slower;
        # one tight-target scenario tracks it without dominating the suite.
        + [
            Scenario(
                circuit="s9234",
                scale=0.05,
                sigma=1.0,
                solver="milp",
                executor="serial",
                n_samples=40,
                n_eval_samples=80,
            )
        ]
    )


_SUITE_BUILDERS = {
    "quick": _quick_suite,
    "default": _default_suite,
    "full": _full_suite,
}

SUITE_NAMES = tuple(sorted(_SUITE_BUILDERS))


def get_suite(name: str) -> List[Scenario]:
    """The scenarios of a named suite, in deterministic order."""
    try:
        builder = _SUITE_BUILDERS[name]
    except KeyError:
        raise ValueError(f"unknown suite {name!r}; choose from {SUITE_NAMES}") from None
    return builder()


def override_execution(
    scenarios: Iterable[Scenario],
    executor: Optional[str] = None,
    jobs: Optional[int] = None,
) -> List[Scenario]:
    """Re-pin the executor/jobs of every scenario (CLI overrides).

    Overriding changes the scenario ids — artifacts produced with an
    override only compare against baselines produced with the same one.
    Scenarios that collapse onto the same id under the override (e.g. a
    serial and a processes variant of one workload forced onto one
    executor) are deduplicated.
    """
    updates = {}
    if executor is not None:
        updates["executor"] = executor
    if jobs is not None:
        updates["jobs"] = jobs
    if not updates:
        return list(scenarios)
    unique = {}
    for scenario in scenarios:
        pinned = replace(scenario, **updates)
        unique.setdefault(pinned.scenario_id, pinned)
    return sort_scenarios(unique.values())
