"""repro.bench — deterministic performance benchmarking with CI gates.

The flow's runtime story ("as fast as the hardware allows") is only
credible if it is measured and gated.  This subsystem provides:

* :mod:`repro.bench.scenarios` — the benchmark matrix (circuit x scale
  x sigma x solver x executor) and the named, deterministically ordered
  suites (``quick`` / ``default`` / ``full``);
* :mod:`repro.bench.runner` — :class:`BenchRunner`, a timed runner with
  warmup/repeat discipline that records per-phase engine timings
  (:meth:`repro.core.results.FlowResult.phase_seconds`) plus result
  metrics and a plan fingerprint per scenario;
* :mod:`repro.bench.artifact` — the versioned ``BENCH_<label>.json``
  artifact schema (:data:`SCHEMA_VERSION`) with structural validation;
* :mod:`repro.bench.compare` — artifact diffing and the regression
  :func:`gate` that fails CI on configurable slowdown thresholds;
* :mod:`repro.bench.trend` — cross-run per-scenario series accumulated
  out of nightly artifacts into a :mod:`repro.store` backend (the same
  idempotent-ingest machinery the campaign trend view uses).

On the CLI this is ``repro bench run | compare | gate | trend``.
"""

from repro.bench.artifact import (
    ARTIFACT_PREFIX,
    SCHEMA_VERSION,
    ArtifactError,
    BenchArtifact,
    ScenarioRecord,
    collect_environment,
    default_artifact_path,
    load_artifact,
    validate_artifact_dict,
)
from repro.bench.compare import (
    DEFAULT_MIN_SECONDS,
    DEFAULT_THRESHOLD,
    Comparison,
    GateResult,
    ScenarioDelta,
    compare_artifacts,
    format_comparison,
    gate,
)
from repro.bench.runner import (
    CAMPAIGN_REPLICATES,
    BenchRunner,
    campaign_fingerprint,
    campaign_metrics,
    campaign_spec_for,
    plan_fingerprint,
    result_metrics,
)
from repro.bench.trend import (
    TREND_SCHEMA_VERSION,
    BenchTrend,
    BenchTrendError,
    BenchTrendPoint,
    ScenarioTrend,
    build_bench_trend,
    format_bench_trend,
    ingest_artifacts,
    open_trend_store,
    point_record,
    validate_trend_record,
)
from repro.bench.scenarios import (
    DISPATCH_CHOICES,
    KIND_CHOICES,
    PARAM_FIELDS,
    SUITE_NAMES,
    Scenario,
    get_suite,
    override_execution,
    scenario_matrix,
    sort_scenarios,
)

__all__ = [
    "ARTIFACT_PREFIX",
    "ArtifactError",
    "BenchArtifact",
    "BenchRunner",
    "BenchTrend",
    "BenchTrendError",
    "BenchTrendPoint",
    "CAMPAIGN_REPLICATES",
    "Comparison",
    "DEFAULT_MIN_SECONDS",
    "DEFAULT_THRESHOLD",
    "DISPATCH_CHOICES",
    "GateResult",
    "KIND_CHOICES",
    "PARAM_FIELDS",
    "SCHEMA_VERSION",
    "SUITE_NAMES",
    "Scenario",
    "ScenarioDelta",
    "ScenarioRecord",
    "ScenarioTrend",
    "TREND_SCHEMA_VERSION",
    "build_bench_trend",
    "campaign_fingerprint",
    "campaign_metrics",
    "campaign_spec_for",
    "collect_environment",
    "compare_artifacts",
    "default_artifact_path",
    "format_bench_trend",
    "format_comparison",
    "gate",
    "get_suite",
    "ingest_artifacts",
    "load_artifact",
    "open_trend_store",
    "override_execution",
    "plan_fingerprint",
    "point_record",
    "result_metrics",
    "scenario_matrix",
    "sort_scenarios",
    "validate_artifact_dict",
    "validate_trend_record",
]
