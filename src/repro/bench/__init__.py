"""repro.bench — deterministic performance benchmarking with CI gates.

The flow's runtime story ("as fast as the hardware allows") is only
credible if it is measured and gated.  This subsystem provides:

* :mod:`repro.bench.scenarios` — the benchmark matrix (circuit x scale
  x sigma x solver x executor) and the named, deterministically ordered
  suites (``quick`` / ``default`` / ``full``);
* :mod:`repro.bench.runner` — :class:`BenchRunner`, a timed runner with
  warmup/repeat discipline that records per-phase engine timings
  (:meth:`repro.core.results.FlowResult.phase_seconds`) plus result
  metrics and a plan fingerprint per scenario;
* :mod:`repro.bench.artifact` — the versioned ``BENCH_<label>.json``
  artifact schema (:data:`SCHEMA_VERSION`) with structural validation;
* :mod:`repro.bench.compare` — artifact diffing and the regression
  :func:`gate` that fails CI on configurable slowdown thresholds.

On the CLI this is ``repro bench run | compare | gate``.
"""

from repro.bench.artifact import (
    ARTIFACT_PREFIX,
    SCHEMA_VERSION,
    ArtifactError,
    BenchArtifact,
    ScenarioRecord,
    collect_environment,
    default_artifact_path,
    load_artifact,
    validate_artifact_dict,
)
from repro.bench.compare import (
    DEFAULT_MIN_SECONDS,
    DEFAULT_THRESHOLD,
    Comparison,
    GateResult,
    ScenarioDelta,
    compare_artifacts,
    format_comparison,
    gate,
)
from repro.bench.runner import BenchRunner, plan_fingerprint, result_metrics
from repro.bench.scenarios import (
    PARAM_FIELDS,
    SUITE_NAMES,
    Scenario,
    get_suite,
    override_execution,
    scenario_matrix,
    sort_scenarios,
)

__all__ = [
    "ARTIFACT_PREFIX",
    "ArtifactError",
    "BenchArtifact",
    "BenchRunner",
    "Comparison",
    "DEFAULT_MIN_SECONDS",
    "DEFAULT_THRESHOLD",
    "GateResult",
    "PARAM_FIELDS",
    "SCHEMA_VERSION",
    "SUITE_NAMES",
    "Scenario",
    "ScenarioDelta",
    "ScenarioRecord",
    "collect_environment",
    "compare_artifacts",
    "default_artifact_path",
    "format_comparison",
    "gate",
    "get_suite",
    "load_artifact",
    "override_execution",
    "plan_fingerprint",
    "result_metrics",
    "scenario_matrix",
    "sort_scenarios",
    "validate_artifact_dict",
]
