"""Timed benchmark runner with warmup/repeat discipline.

:class:`BenchRunner` executes scenarios end to end on the real flow
(:class:`~repro.core.flow.BufferInsertionFlow`) and records

* the total wall-clock seconds of every timed repeat (after the
  configured number of discarded warmup runs, which pay one-time costs
  such as imports, pool start-up and allocator warm-up),
* the canonical per-phase engine timings of the best repeat
  (:meth:`~repro.core.results.FlowResult.phase_seconds` — uniform
  across executors),
* result metrics and a plan fingerprint, so a comparison can tell a
  genuine speedup from a run that silently computed something else.

Designs are cached per ``(circuit, scale, seed)`` so that a suite
re-using one circuit does not re-generate it per scenario; circuit
construction is deliberately *outside* the timed region — the subsystem
benchmarks the flow, not the netlist generator.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.bench.artifact import BenchArtifact, ScenarioRecord
from repro.bench.scenarios import Scenario, get_suite, sort_scenarios
from repro.core.flow import BufferInsertionFlow
from repro.core.results import FlowResult
from repro.obs.metrics import MANIFEST_SCHEMA_VERSION, get_registry
from repro.obs.trace import get_tracer
from repro.obs.trace import span as trace_span

#: Replicates of a campaign scenario's single matrix point: enough cells
#: in one compiled-system group that the batched gang has something to
#: overlap, small enough for the quick suite.
CAMPAIGN_REPLICATES = 8


def plan_fingerprint(result: FlowResult) -> str:
    """Hex digest over the buffer plan (executor-independent)."""
    payload = ";".join(
        f"{b.flip_flop}:{b.lower:.9g}:{b.upper:.9g}:{b.group}"
        for b in sorted(result.plan.buffers, key=lambda b: b.flip_flop)
    )
    payload += f"|{result.improved_yield:.9g}|{result.original_yield:.9g}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def campaign_spec_for(scenario: Scenario):
    """The campaign matrix a ``kind="campaign"`` scenario runs.

    One matrix point replicated :data:`CAMPAIGN_REPLICATES` times: all
    cells share one compiled-system fingerprint, so the batched runner
    dispatches them as a single gang.  The spec is identical for every
    dispatch strategy — the two quick-suite rows differ only in how the
    same cells are driven, which is what makes their plan fingerprints
    comparable.
    """
    from repro.campaign import CampaignSpec

    return CampaignSpec(
        name="bench",
        seed=scenario.seed,
        circuits=((scenario.circuit, scenario.scale),),
        sigmas=(scenario.sigma,),
        solvers=(scenario.solver,),
        budgets=((scenario.n_samples, scenario.n_eval_samples),),
        replicates=CAMPAIGN_REPLICATES,
    )


def campaign_fingerprint(records: Dict[str, Dict[str, object]]) -> str:
    """Hex digest over every cell's deterministic result payload.

    The campaign analogue of :func:`plan_fingerprint`: identical inputs
    must produce identical digests regardless of executor *and* dispatch
    strategy, so the batched and sequential quick-suite rows double as a
    bit-identity guard.
    """
    payload = json.dumps(
        {
            fingerprint: {"cell": record["cell"], "result": record["result"]}
            for fingerprint, record in records.items()
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def campaign_metrics(records: Dict[str, Dict[str, object]]) -> Dict[str, float]:
    """Scalar metrics over the campaign's cells (means guard results)."""
    results = [record["result"] for record in records.values()]
    n = max(1, len(results))
    return {
        "n_cells": float(len(results)),
        "n_buffers_mean": float(sum(r["n_buffers"] for r in results)) / n,
        "improved_yield_mean": float(sum(r["improved_yield"] for r in results)) / n,
        "yield_improvement_mean": float(sum(r["yield_improvement"] for r in results)) / n,
    }


def result_metrics(result: FlowResult) -> Dict[str, float]:
    """Scalar result metrics stored next to the timings."""
    return {
        "n_buffers": float(result.plan.n_buffers),
        "n_physical_buffers": float(result.plan.n_physical_buffers),
        "original_yield": float(result.original_yield),
        "improved_yield": float(result.improved_yield),
        "yield_improvement": float(result.yield_improvement),
    }


class BenchRunner:
    """Run benchmark scenarios with warmup/repeat discipline.

    Parameters
    ----------
    warmup:
        Flow runs per scenario whose timings are discarded.
    repeat:
        Timed flow runs per scenario (the artifact stores all of them;
        comparisons use the fastest).
    progress:
        Optional :class:`repro.engine.ProgressReporter` forwarded to the
        flow (stderr only; never contaminates machine-readable output).
    """

    def __init__(self, warmup: int = 1, repeat: int = 1, progress=None) -> None:
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        if repeat < 1:
            raise ValueError(f"repeat must be >= 1, got {repeat}")
        self.warmup = int(warmup)
        self.repeat = int(repeat)
        self.progress = progress
        self._design_cache: Dict[Tuple[str, float, int], object] = {}

    # ------------------------------------------------------------------
    def _design_for(self, scenario: Scenario):
        from repro.circuit.suite import build_suite_circuit

        key = (scenario.circuit, scenario.scale, scenario.seed)
        if key not in self._design_cache:
            self._design_cache[key] = build_suite_circuit(
                scenario.circuit, scale=scenario.scale, seed=scenario.seed
            )
        return self._design_cache[key]

    def _run_flow(self, design, scenario: Scenario, executor=None) -> Tuple[float, FlowResult]:
        flow = BufferInsertionFlow(
            design, scenario.flow_config(), executor=executor, progress=self.progress
        )
        start = time.perf_counter()
        result = flow.run()
        return time.perf_counter() - start, result

    # ------------------------------------------------------------------
    def run_scenario(self, scenario: Scenario) -> ScenarioRecord:
        """Warm up, time ``repeat`` runs and record the measurements.

        One executor serves every run of the scenario: the engine's warm
        worker state is content-keyed (compiled constraint system +
        solver settings), so after the warmup the repeats reuse the same
        worker pool instead of paying a process-pool start per run —
        exactly how a long-lived service would run the flow.

        Campaign scenarios (``kind="campaign"``) instead time a whole
        :class:`~repro.campaign.runner.CampaignRunner` invocation into a
        throwaway store; the runner owns its executor, so every repeat
        of every dispatch strategy pays the same pool start-up and the
        comparison isolates the dispatch path itself.
        """
        from repro.engine import create_executor

        with trace_span("bench.scenario", scenario=scenario.scenario_id):
            if scenario.kind == "campaign":
                return self._timed_campaign_runs(scenario)
            design = self._design_for(scenario)
            executor = create_executor(scenario.executor, scenario.jobs)
            try:
                return self._timed_runs(design, scenario, executor)
            finally:
                executor.close()

    # ------------------------------------------------------------------
    def _run_campaign(self, scenario: Scenario) -> Tuple[float, Dict[str, Dict[str, object]]]:
        """One full campaign run into a fresh throwaway store."""
        from repro.campaign import CampaignRunner
        from repro.campaign.store import CampaignStore

        spec = campaign_spec_for(scenario)
        with tempfile.TemporaryDirectory(prefix="repro-bench-campaign-") as tmp:
            store = CampaignStore.open("jsonl:" + os.path.join(tmp, "store.jsonl"))
            runner = CampaignRunner(
                spec,
                store,
                executor=scenario.executor,
                jobs=scenario.jobs,
                dispatch=scenario.dispatch,
            )
            start = time.perf_counter()
            runner.run()
            seconds = time.perf_counter() - start
            return seconds, store.load()

    def _timed_campaign_runs(self, scenario: Scenario) -> ScenarioRecord:
        for _ in range(self.warmup):
            self._run_campaign(scenario)

        totals: List[float] = []
        best: Optional[Tuple[float, Dict[str, Dict[str, object]]]] = None
        for _ in range(self.repeat):
            seconds, records = self._run_campaign(scenario)
            totals.append(seconds)
            if best is None or seconds < best[0]:
                best = (seconds, records)
        assert best is not None
        _, best_records = best
        return ScenarioRecord(
            scenario=scenario,
            total_seconds=totals,
            phase_seconds={},
            metrics=campaign_metrics(best_records),
            plan_fingerprint=campaign_fingerprint(best_records),
        )

    def _timed_runs(self, design, scenario: Scenario, executor) -> ScenarioRecord:
        for _ in range(self.warmup):
            self._run_flow(design, scenario, executor)

        totals: List[float] = []
        best: Optional[Tuple[float, FlowResult]] = None
        for _ in range(self.repeat):
            seconds, result = self._run_flow(design, scenario, executor)
            totals.append(seconds)
            if best is None or seconds < best[0]:
                best = (seconds, result)
        assert best is not None
        _, best_result = best
        return ScenarioRecord(
            scenario=scenario,
            total_seconds=totals,
            phase_seconds=best_result.phase_seconds(),
            metrics=result_metrics(best_result),
            plan_fingerprint=plan_fingerprint(best_result),
        )

    def run_scenarios(
        self, scenarios: Iterable[Scenario], label: str, suite: str = "custom"
    ) -> BenchArtifact:
        """Run scenarios (re-sorted deterministically) into one artifact.

        When the run is traced (:func:`repro.obs.trace.get_tracer`), the
        artifact carries an ``obs`` attachment: the metrics snapshot so
        far plus the trace path, so nightly ``BENCH_*.json`` files point
        at the telemetry of the run that produced them.
        """
        records = [self.run_scenario(s) for s in sort_scenarios(scenarios)]
        artifact = BenchArtifact(
            label=label,
            suite=suite,
            records=records,
            warmup=self.warmup,
            repeat=self.repeat,
        )
        tracer = get_tracer()
        if tracer is not None:
            artifact.obs = {
                "schema_version": MANIFEST_SCHEMA_VERSION,
                "trace_path": tracer.path,
                "metrics": get_registry().snapshot(),
            }
        return artifact

    def run_suite(self, suite: str, label: Optional[str] = None) -> BenchArtifact:
        """Run one named suite (see :func:`repro.bench.scenarios.get_suite`)."""
        return self.run_scenarios(get_suite(suite), label=label or suite, suite=suite)
