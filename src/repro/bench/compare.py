"""Artifact comparison and the CI regression gate.

:func:`compare_artifacts` joins two :class:`~repro.bench.artifact.
BenchArtifact` objects on scenario id and computes total and per-phase
slowdown ratios.  :func:`gate` turns a comparison into a pass/fail
verdict with configurable thresholds:

* a scenario **fails** when its candidate/baseline runtime ratio is
  *strictly greater* than ``threshold`` (a ratio exactly at the
  threshold still passes — "no worse than Nx" is inclusive);
* improvements (ratio < 1) always pass;
* scenarios present in the baseline but missing from the candidate fail
  (a benchmark that silently stopped running is a regression too);
  scenarios only in the candidate are reported but do not fail;
* sub-measurement-noise scenarios are exempt: when both sides run
  faster than ``min_seconds`` the ratio is meaningless and the scenario
  passes unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.artifact import BenchArtifact

#: Runtimes below this are treated as measurement noise by the gate.
DEFAULT_MIN_SECONDS = 0.05

#: Default slowdown tolerance (candidate may be up to 1.5x the baseline).
DEFAULT_THRESHOLD = 1.5


@dataclass
class ScenarioDelta:
    """Runtime delta of one scenario present in both artifacts."""

    scenario_id: str
    baseline_seconds: float
    candidate_seconds: float
    phase_ratios: Dict[str, float] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """Candidate/baseline runtime ratio (>1 means slower)."""
        if self.baseline_seconds <= 0.0:
            return float("inf") if self.candidate_seconds > 0.0 else 1.0
        return self.candidate_seconds / self.baseline_seconds

    @property
    def speedup(self) -> float:
        """Baseline/candidate ratio (>1 means the candidate got faster)."""
        ratio = self.ratio
        if ratio == 0.0:
            return float("inf")
        return 1.0 / ratio


@dataclass
class Comparison:
    """Join of two artifacts on scenario id."""

    baseline_label: str
    candidate_label: str
    deltas: List[ScenarioDelta] = field(default_factory=list)
    missing_in_candidate: List[str] = field(default_factory=list)
    only_in_candidate: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "baseline": self.baseline_label,
            "candidate": self.candidate_label,
            "scenarios": [
                {
                    "id": delta.scenario_id,
                    "baseline_seconds": delta.baseline_seconds,
                    "candidate_seconds": delta.candidate_seconds,
                    "ratio": delta.ratio,
                    "phase_ratios": dict(delta.phase_ratios),
                }
                for delta in self.deltas
            ],
            "missing_in_candidate": list(self.missing_in_candidate),
            "only_in_candidate": list(self.only_in_candidate),
        }


def compare_artifacts(baseline: BenchArtifact, candidate: BenchArtifact) -> Comparison:
    """Join two artifacts on scenario id and compute slowdown ratios."""
    comparison = Comparison(
        baseline_label=baseline.label, candidate_label=candidate.label
    )
    baseline_ids = set(baseline.scenario_ids())
    comparison.only_in_candidate = [
        sid for sid in candidate.scenario_ids() if sid not in baseline_ids
    ]
    for record in baseline.records:
        sid = record.scenario.scenario_id
        other = candidate.record_for(sid)
        if other is None:
            comparison.missing_in_candidate.append(sid)
            continue
        phase_ratios: Dict[str, float] = {}
        for phase, base_seconds in record.phase_seconds.items():
            cand_seconds = other.phase_seconds.get(phase)
            if cand_seconds is None or base_seconds <= 0.0:
                continue
            phase_ratios[phase] = cand_seconds / base_seconds
        comparison.deltas.append(
            ScenarioDelta(
                scenario_id=sid,
                baseline_seconds=record.best_seconds,
                candidate_seconds=other.best_seconds,
                phase_ratios=phase_ratios,
            )
        )
    return comparison


@dataclass
class GateResult:
    """Verdict of the regression gate."""

    passed: bool
    threshold: float
    failures: List[str] = field(default_factory=list)
    comparison: Optional[Comparison] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "threshold": self.threshold,
            "failures": list(self.failures),
            "comparison": self.comparison.as_dict() if self.comparison else None,
        }


def gate(
    baseline: BenchArtifact,
    candidate: BenchArtifact,
    threshold: float = DEFAULT_THRESHOLD,
    phase_threshold: Optional[float] = None,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> GateResult:
    """Fail when any shared scenario slowed down beyond ``threshold``.

    Parameters
    ----------
    threshold:
        Maximum tolerated total-runtime ratio (inclusive).
    phase_threshold:
        Optional per-phase ratio ceiling; phases whose baseline share is
        below ``min_seconds`` are skipped as noise.
    min_seconds:
        Noise floor: scenarios where both sides are faster than this
        pass unconditionally.
    """
    if threshold <= 0.0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    comparison = compare_artifacts(baseline, candidate)
    failures: List[str] = []
    for sid in comparison.missing_in_candidate:
        failures.append(f"{sid}: present in baseline but missing from candidate")
    for delta in comparison.deltas:
        noise = (
            delta.baseline_seconds < min_seconds and delta.candidate_seconds < min_seconds
        )
        if noise:
            continue
        if delta.ratio > threshold:
            failures.append(
                f"{delta.scenario_id}: {delta.candidate_seconds:.3f}s vs "
                f"{delta.baseline_seconds:.3f}s baseline "
                f"({delta.ratio:.2f}x > {threshold:.2f}x allowed)"
            )
            continue
        if phase_threshold is not None:
            base = baseline.record_for(delta.scenario_id)
            for phase, ratio in sorted(delta.phase_ratios.items()):
                base_seconds = base.phase_seconds.get(phase, 0.0) if base else 0.0
                if base_seconds < min_seconds:
                    continue
                if ratio > phase_threshold:
                    failures.append(
                        f"{delta.scenario_id}: phase {phase} slowed "
                        f"{ratio:.2f}x > {phase_threshold:.2f}x allowed"
                    )
    return GateResult(
        passed=not failures,
        threshold=threshold,
        failures=failures,
        comparison=comparison,
    )


def format_comparison(comparison: Comparison) -> str:
    """Human-readable comparison table."""
    lines = [
        f"baseline  : {comparison.baseline_label}",
        f"candidate : {comparison.candidate_label}",
        f"{'scenario':<60} {'base (s)':>9} {'cand (s)':>9} {'ratio':>7}",
    ]
    for delta in comparison.deltas:
        lines.append(
            f"{delta.scenario_id:<60} {delta.baseline_seconds:>9.3f} "
            f"{delta.candidate_seconds:>9.3f} {delta.ratio:>6.2f}x"
        )
    for sid in comparison.missing_in_candidate:
        lines.append(f"{sid:<60} {'--':>9} {'missing':>9} {'--':>7}")
    for sid in comparison.only_in_candidate:
        lines.append(f"{sid:<60} {'new':>9} {'--':>9} {'--':>7}")
    return "\n".join(lines)
