"""Dense two-phase primal simplex.

Solves the linear program::

    minimise    c' x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                lower <= x <= upper

All bounds must be finite (the callers in this package always have finite
tuning ranges / big-M bounds); the solver shifts each variable by its lower
bound, adds upper-bound rows and slack/artificial variables, and runs a
standard two-phase tableau simplex with Bland's anti-cycling rule.

The implementation favours clarity and robustness over speed: the problems
produced by the buffer-insertion flow have tens of variables, for which a
dense tableau is perfectly adequate.  The scipy backend
(:mod:`repro.milp.backends`) can be selected for larger instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.milp.status import SolveStatus

_TOL = 1e-9


@dataclass
class LpResult:
    """Raw result of an LP solve on arrays (not yet mapped back to Vars)."""

    status: SolveStatus
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None
    iterations: int = 0


def solve_lp_arrays(
    c: np.ndarray,
    a_ub: Optional[np.ndarray],
    b_ub: Optional[np.ndarray],
    a_eq: Optional[np.ndarray],
    b_eq: Optional[np.ndarray],
    lower: np.ndarray,
    upper: np.ndarray,
    max_iterations: int = 20000,
) -> LpResult:
    """Solve a bounded LP given as dense arrays.  See module docstring."""
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    if np.any(~np.isfinite(lower)) or np.any(~np.isfinite(upper)):
        raise ValueError("simplex backend requires finite variable bounds")
    if np.any(upper < lower - _TOL):
        return LpResult(SolveStatus.INFEASIBLE)

    a_ub = np.zeros((0, n)) if a_ub is None else np.asarray(a_ub, dtype=float).reshape(-1, n)
    b_ub = np.zeros(0) if b_ub is None else np.asarray(b_ub, dtype=float).ravel()
    a_eq = np.zeros((0, n)) if a_eq is None else np.asarray(a_eq, dtype=float).reshape(-1, n)
    b_eq = np.zeros(0) if b_eq is None else np.asarray(b_eq, dtype=float).ravel()

    # Shift variables so that y = x - lower >= 0.
    span = upper - lower
    b_ub_shift = b_ub - a_ub @ lower if a_ub.size else b_ub
    b_eq_shift = b_eq - a_eq @ lower if a_eq.size else b_eq
    objective_shift = float(c @ lower)

    # Upper bounds become explicit <= rows (skip unbounded spans).
    finite_span_rows = []
    finite_span_rhs = []
    for j in range(n):
        if np.isfinite(span[j]):
            row = np.zeros(n)
            row[j] = 1.0
            finite_span_rows.append(row)
            finite_span_rhs.append(span[j])
    if finite_span_rows:
        a_ub_full = np.vstack([a_ub, np.array(finite_span_rows)]) if a_ub.size else np.array(finite_span_rows)
        b_ub_full = np.concatenate([b_ub_shift, np.array(finite_span_rhs)])
    else:  # pragma: no cover - all spans are finite given the check above
        a_ub_full, b_ub_full = a_ub, b_ub_shift

    result = _two_phase_simplex(c, a_ub_full, b_ub_full, a_eq, b_eq_shift, max_iterations)
    if result.status.has_solution and result.x is not None:
        x = result.x[:n] + lower
        objective = float(c @ result.x[:n]) + objective_shift
        return LpResult(result.status, x=x, objective=objective, iterations=result.iterations)
    return result


def _two_phase_simplex(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    max_iterations: int,
) -> LpResult:
    """Two-phase simplex for ``min c'y, A_ub y <= b_ub, A_eq y = b_eq, y >= 0``."""
    n = c.shape[0]
    m_ub = a_ub.shape[0]
    m_eq = a_eq.shape[0]
    m = m_ub + m_eq

    # Build rows: [A | slack | artificial] y = b with b >= 0.
    a = np.vstack([a_ub, a_eq]) if m else np.zeros((0, n))
    b = np.concatenate([b_ub, b_eq]) if m else np.zeros(0)
    row_is_eq = np.array([False] * m_ub + [True] * m_eq)

    # Flip rows with negative rhs so that b >= 0 (<= rows become >= rows,
    # handled by a surplus column with negative sign plus an artificial).
    slack_cols = []
    sign = np.ones(m)
    for i in range(m):
        if b[i] < 0:
            a[i, :] *= -1.0
            b[i] *= -1.0
            sign[i] = -1.0

    n_slack = 0
    slack_matrix = np.zeros((m, 0))
    for i in range(m):
        if row_is_eq[i]:
            continue
        col = np.zeros((m, 1))
        # Original <= row: slack +1; flipped (<= with negative rhs) becomes
        # >= row: surplus -1.
        col[i, 0] = 1.0 if sign[i] > 0 else -1.0
        slack_matrix = np.hstack([slack_matrix, col])
        slack_cols.append(n + n_slack)
        n_slack += 1

    # Artificial variables: needed for equality rows and for flipped >= rows
    # (their surplus column cannot serve as an initial basis).
    art_matrix = np.zeros((m, 0))
    n_art = 0
    art_rows = []
    basis = [-1] * m
    slack_ptr = 0
    for i in range(m):
        needs_artificial = row_is_eq[i] or sign[i] < 0
        if not row_is_eq[i]:
            if sign[i] > 0:
                basis[i] = n + slack_ptr
            slack_ptr += 1
        if needs_artificial:
            col = np.zeros((m, 1))
            col[i, 0] = 1.0
            art_matrix = np.hstack([art_matrix, col])
            basis[i] = n + n_slack + n_art
            art_rows.append(i)
            n_art += 1

    full = np.hstack([a, slack_matrix, art_matrix]) if m else np.zeros((0, n + n_slack + n_art))
    total_cols = n + n_slack + n_art
    iterations = 0

    if m == 0:
        # Only bounds: minimise by setting y to 0 for non-negative costs.
        y = np.zeros(n)
        negative = c < -_TOL
        if np.any(negative):  # pragma: no cover - callers always bound variables
            return LpResult(SolveStatus.UNBOUNDED)
        return LpResult(SolveStatus.OPTIMAL, x=y, objective=0.0, iterations=0)

    tableau = np.hstack([full, b.reshape(-1, 1)])

    # ------------------------------------------------------------------
    # Phase 1: minimise the sum of artificial variables.
    # ------------------------------------------------------------------
    if n_art:
        phase1_cost = np.zeros(total_cols)
        phase1_cost[n + n_slack:] = 1.0
        status, iterations = _run_simplex(tableau, basis, phase1_cost, max_iterations)
        if status is not SolveStatus.OPTIMAL:
            return LpResult(status, iterations=iterations)
        phase1_obj = _objective_value(tableau, basis, phase1_cost)
        if phase1_obj > 1e-7:
            return LpResult(SolveStatus.INFEASIBLE, iterations=iterations)
        _drive_out_artificials(tableau, basis, n + n_slack)
        # Drop artificial columns.
        tableau = np.hstack([tableau[:, : n + n_slack], tableau[:, -1:]])
        total_cols = n + n_slack

    # ------------------------------------------------------------------
    # Phase 2: minimise the real objective.
    # ------------------------------------------------------------------
    cost = np.zeros(total_cols)
    cost[:n] = c
    status, iters2 = _run_simplex(tableau, basis, cost, max_iterations)
    iterations += iters2
    if status is not SolveStatus.OPTIMAL:
        return LpResult(status, iterations=iterations)

    y = np.zeros(total_cols)
    for i, var in enumerate(basis):
        if 0 <= var < total_cols:
            y[var] = tableau[i, -1]
    objective = float(cost @ y)
    return LpResult(SolveStatus.OPTIMAL, x=y[:n], objective=objective, iterations=iterations)


def _objective_value(tableau: np.ndarray, basis, cost: np.ndarray) -> float:
    value = 0.0
    for i, var in enumerate(basis):
        if var >= 0:
            value += cost[var] * tableau[i, -1]
    return value


def _drive_out_artificials(tableau: np.ndarray, basis, n_real: int) -> None:
    """Pivot artificial variables out of the basis where possible."""
    m = tableau.shape[0]
    for i in range(m):
        if basis[i] >= n_real:
            # Find a non-artificial column with a non-zero entry in this row.
            for j in range(n_real):
                if abs(tableau[i, j]) > 1e-9:
                    _pivot(tableau, i, j)
                    basis[i] = j
                    break
            # If none exists the row is redundant; the artificial stays basic
            # at value zero, which is harmless.


def _run_simplex(
    tableau: np.ndarray, basis, cost: np.ndarray, max_iterations: int
) -> Tuple[SolveStatus, int]:
    """Run primal simplex pivots in place until optimality."""
    m = tableau.shape[0]
    n_total = tableau.shape[1] - 1
    iterations = 0

    while iterations < max_iterations:
        iterations += 1
        # Reduced costs: r_j = c_j - c_B' B^-1 A_j  (computed from the tableau).
        cb = np.array([cost[var] if var >= 0 else 0.0 for var in basis])
        reduced = cost[:n_total] - cb @ tableau[:, :n_total]
        # Bland's rule: smallest index with negative reduced cost.
        entering = -1
        for j in range(n_total):
            if reduced[j] < -_TOL:
                entering = j
                break
        if entering < 0:
            return SolveStatus.OPTIMAL, iterations

        column = tableau[:, entering]
        ratios = np.full(m, np.inf)
        positive = column > _TOL
        ratios[positive] = tableau[positive, -1] / column[positive]
        if not np.any(np.isfinite(ratios)):
            return SolveStatus.UNBOUNDED, iterations
        # Bland's rule on the leaving variable: among the minimum ratios pick
        # the row whose basic variable has the smallest index.
        min_ratio = np.min(ratios)
        candidates = [i for i in range(m) if np.isfinite(ratios[i]) and ratios[i] <= min_ratio + _TOL]
        leaving = min(candidates, key=lambda i: basis[i])
        _pivot(tableau, leaving, entering)
        basis[leaving] = entering

    return SolveStatus.ITERATION_LIMIT, iterations


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot on (row, col)."""
    tableau[row, :] /= tableau[row, col]
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > _TOL:
            tableau[i, :] -= tableau[i, col] * tableau[row, :]
