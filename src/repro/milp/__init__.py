"""Mixed-integer linear programming substrate.

The paper solves its per-sample buffer-minimisation problems with Gurobi.
Gurobi is not available offline, so this subpackage provides a
self-contained replacement with the small API surface the flow needs:

* :mod:`repro.milp.expr` — linear expressions and constraints built with
  natural Python operators;
* :mod:`repro.milp.model` — the :class:`Model` front end (variables,
  constraints, objective, ``solve``);
* :mod:`repro.milp.simplex` — a dense two-phase primal simplex solver for
  the LP relaxations (pure numpy);
* :mod:`repro.milp.backends` — optional scipy ``linprog`` (HiGHS) backend
  used when scipy is installed (cross-validated against the built-in
  simplex in the test suite);
* :mod:`repro.milp.branch_bound` — best-first branch & bound on integer
  and binary variables with warm-start incumbents.

The solver targets the small and medium problems produced by the
sampling-based flow (tens of variables); it is exact, deterministic and
dependency-light rather than industrial-strength.
"""

from repro.milp.expr import Constraint, LinExpr, Sense
from repro.milp.model import Model, Objective, Var, VarType
from repro.milp.solution import Solution
from repro.milp.status import SolveStatus

__all__ = [
    "LinExpr",
    "Constraint",
    "Sense",
    "Model",
    "Var",
    "VarType",
    "Objective",
    "Solution",
    "SolveStatus",
]
