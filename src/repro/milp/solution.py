"""Solution container returned by LP and MILP solves."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.milp.status import SolveStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.milp.model import Var


@dataclass
class Solution:
    """Result of a solve.

    Attributes
    ----------
    status:
        Outcome of the solve.
    objective:
        Objective value of the returned assignment (``None`` when no
        feasible assignment is available).
    values:
        Variable assignment keyed by :class:`~repro.milp.model.Var`.
    iterations:
        Total simplex iterations performed.
    nodes:
        Branch-and-bound nodes explored (0 for pure LPs).
    """

    status: SolveStatus
    objective: Optional[float] = None
    values: Dict["Var", float] = field(default_factory=dict)
    iterations: int = 0
    nodes: int = 0

    def __getitem__(self, var: "Var") -> float:
        """Value of a variable in the solution."""
        return self.values[var]

    def get(self, var: "Var", default: float = 0.0) -> float:
        """Value of a variable, with a default for absent variables."""
        return self.values.get(var, default)

    @property
    def is_optimal(self) -> bool:
        """Whether the solution is proven optimal."""
        return self.status.is_optimal

    @property
    def is_feasible(self) -> bool:
        """Whether a feasible assignment is available."""
        return self.status.has_solution and bool(self.values)

    def value_by_name(self) -> Dict[str, float]:
        """Assignment keyed by variable name (for reporting and tests)."""
        return {var.name: value for var, value in self.values.items()}
