"""Solver status codes."""

from __future__ import annotations

import enum


class SolveStatus(enum.Enum):
    """Outcome of an LP or MILP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    NODE_LIMIT = "node_limit"
    ERROR = "error"

    @property
    def is_optimal(self) -> bool:
        """Whether the solve finished with a proven optimal solution."""
        return self is SolveStatus.OPTIMAL

    @property
    def has_solution(self) -> bool:
        """Whether a (possibly suboptimal) feasible solution is available."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.ITERATION_LIMIT, SolveStatus.NODE_LIMIT)
