"""Linear expressions and constraints.

A :class:`LinExpr` is an affine expression ``sum_i coef_i * var_i + const``
over :class:`~repro.milp.model.Var` objects.  Expressions are built with
the usual Python operators and turned into :class:`Constraint` objects with
``<=``, ``>=`` and ``==``, mirroring the modelling style of commercial
solvers (and of the paper's Gurobi formulation)::

    model.add_constr(x - y <= 5.0)
    model.add_constr(2 * a + b == 1.0)
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Iterable, Mapping, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.milp.model import Var

Number = Union[int, float]


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


class LinExpr:
    """An affine expression over model variables."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Mapping["Var", float] = None, constant: float = 0.0) -> None:
        self.coeffs: Dict["Var", float] = dict(coeffs) if coeffs else {}
        self.constant = float(constant)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_var(cls, var: "Var", coefficient: float = 1.0) -> "LinExpr":
        """Expression consisting of a single scaled variable."""
        return cls({var: float(coefficient)})

    @classmethod
    def sum_of(cls, terms: Iterable[Union["LinExpr", "Var", Number]]) -> "LinExpr":
        """Sum an iterable of expressions, variables and numbers."""
        total = cls()
        for term in terms:
            total = total + term
        return total

    def copy(self) -> "LinExpr":
        """A shallow copy of the expression."""
        return LinExpr(self.coeffs, self.constant)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["LinExpr", "Var", Number]) -> "LinExpr":
        from repro.milp.model import Var  # local import to avoid a cycle

        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Var):
            return LinExpr.from_var(other)
        if isinstance(other, (int, float)):
            return LinExpr(constant=float(other))
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: Union["LinExpr", "Var", Number]) -> "LinExpr":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        result = self.copy()
        for var, coef in other.coeffs.items():
            result.coeffs[var] = result.coeffs.get(var, 0.0) + coef
        result.constant += other.constant
        return result

    __radd__ = __add__

    def __sub__(self, other: Union["LinExpr", "Var", Number]) -> "LinExpr":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self + (other * -1.0)

    def __rsub__(self, other: Union["LinExpr", "Var", Number]) -> "LinExpr":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other + (self * -1.0)

    def __mul__(self, factor: Number) -> "LinExpr":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return LinExpr(
            {var: coef * float(factor) for var, coef in self.coeffs.items()},
            self.constant * float(factor),
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # ------------------------------------------------------------------
    # Comparisons create constraints
    # ------------------------------------------------------------------
    def __le__(self, other: Union["LinExpr", "Var", Number]) -> "Constraint":
        return Constraint(self - other, Sense.LE)

    def __ge__(self, other: Union["LinExpr", "Var", Number]) -> "Constraint":
        return Constraint(self - other, Sense.GE)

    def __eq__(self, other):  # type: ignore[override]
        return Constraint(self - other, Sense.EQ)

    def __hash__(self):  # pragma: no cover - expressions are not hashable
        raise TypeError("LinExpr is not hashable")

    # ------------------------------------------------------------------
    def value(self, assignment: Mapping["Var", float]) -> float:
        """Evaluate the expression for a variable assignment."""
        total = self.constant
        for var, coef in self.coeffs.items():
            total += coef * float(assignment[var])
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.coeffs.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` in normalised form.

    The constructor receives the already-normalised expression (left-hand
    side minus right-hand side) and the sense.
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: Sense, name: str = "") -> None:
        if not isinstance(expr, LinExpr):
            raise TypeError("Constraint expects a LinExpr")
        self.expr = expr
        self.sense = sense
        self.name = name

    @property
    def rhs(self) -> float:
        """Right-hand side when the constraint is written ``coef·x (sense) rhs``."""
        return -self.expr.constant

    def violation(self, assignment: Mapping["Var", float]) -> float:
        """Non-negative violation of the constraint at an assignment."""
        value = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return max(0.0, value)
        if self.sense is Sense.GE:
            return max(0.0, -value)
        return abs(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{self.expr!r} {self.sense.value} 0"
