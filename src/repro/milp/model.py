"""MILP model front end.

:class:`Model` collects variables, linear constraints and an objective and
solves the problem with branch & bound over LP relaxations.  The API is a
deliberately small subset of what commercial solvers offer — exactly what
the paper's formulations (8)–(21) need::

    model = Model("sample_42")
    x = model.add_var("x", lb=-10, ub=10)
    c = model.add_var("c", vtype=VarType.BINARY)
    model.add_constr(x - 1000 * c <= 0)
    model.add_constr(-x - 1000 * c <= 0)
    model.set_objective(c)
    solution = model.solve()
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Union

import numpy as np

from repro.milp.expr import Constraint, LinExpr, Sense
from repro.milp.solution import Solution

Number = Union[int, float]

#: Default big bound used when a variable is declared without explicit bounds.
DEFAULT_BOUND = 1e6


class VarType(enum.Enum):
    """Variable domain."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Var:
    """A decision variable.  Hashable by identity; created via ``Model.add_var``."""

    __slots__ = ("name", "lb", "ub", "vtype", "index")
    _counter = itertools.count()

    def __init__(self, name: str, lb: float, ub: float, vtype: VarType, index: int) -> None:
        self.name = name
        self.lb = float(lb)
        self.ub = float(ub)
        self.vtype = vtype
        self.index = index

    # Arithmetic delegates to LinExpr so that ``2 * x + y - 3`` works.
    def _expr(self) -> LinExpr:
        return LinExpr.from_var(self)

    def __add__(self, other):
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return LinExpr._coerce(LinExpr(), other) - self._expr() if not isinstance(other, LinExpr) else other - self._expr()

    def __mul__(self, factor):
        return self._expr() * factor

    __rmul__ = __mul__

    def __neg__(self):
        return self._expr() * -1.0

    def __le__(self, other) -> Constraint:
        return self._expr() <= other

    def __ge__(self, other) -> Constraint:
        return self._expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, Var) and other is self:
            return True
        return self._expr() == other

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Var({self.name!r}, [{self.lb}, {self.ub}], {self.vtype.value})"


@dataclass
class Objective:
    """Objective function (always stored as a minimisation)."""

    expr: LinExpr
    minimise: bool = True


class Model:
    """A mixed-integer linear program."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Var] = []
        self.constraints: List[Constraint] = []
        self.objective: Objective = Objective(LinExpr())

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def add_var(
        self,
        name: str = "",
        lb: float = 0.0,
        ub: float = DEFAULT_BOUND,
        vtype: VarType = VarType.CONTINUOUS,
    ) -> Var:
        """Create and register a decision variable."""
        if vtype is VarType.BINARY:
            lb, ub = 0.0, 1.0
        if ub < lb:
            raise ValueError(f"variable {name!r}: upper bound {ub} < lower bound {lb}")
        index = len(self.variables)
        var = Var(name or f"v{index}", lb, ub, vtype, index)
        self.variables.append(var)
        return var

    def add_vars(
        self,
        count: int,
        prefix: str = "v",
        lb: float = 0.0,
        ub: float = DEFAULT_BOUND,
        vtype: VarType = VarType.CONTINUOUS,
    ) -> List[Var]:
        """Create ``count`` variables named ``prefix_0 .. prefix_{count-1}``."""
        return [self.add_var(f"{prefix}_{i}", lb, ub, vtype) for i in range(count)]

    def add_constr(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built from expression comparisons."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constr expects a Constraint (build it with <=, >= or == on expressions)"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expr: Union[LinExpr, Var, Number], minimise: bool = True) -> None:
        """Set the objective (converted internally to minimisation)."""
        if isinstance(expr, Var):
            expr = LinExpr.from_var(expr)
        elif isinstance(expr, (int, float)):
            expr = LinExpr(constant=float(expr))
        self.objective = Objective(expr.copy(), minimise=minimise)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_variables(self) -> int:
        """Number of variables."""
        return len(self.variables)

    @property
    def n_constraints(self) -> int:
        """Number of constraints."""
        return len(self.constraints)

    def integer_variables(self) -> List[Var]:
        """Variables with an integrality requirement."""
        return [v for v in self.variables if v.vtype is not VarType.CONTINUOUS]

    # ------------------------------------------------------------------
    # Array form
    # ------------------------------------------------------------------
    def to_arrays(self):
        """Convert the model to dense arrays for the LP/B&B engines.

        Returns a dict with keys ``c``, ``a_ub``, ``b_ub``, ``a_eq``,
        ``b_eq``, ``lower``, ``upper``, ``objective_constant`` and
        ``integer_indices``.
        """
        n = len(self.variables)
        c = np.zeros(n)
        for var, coef in self.objective.expr.coeffs.items():
            c[var.index] += coef
        sign = 1.0 if self.objective.minimise else -1.0
        c *= sign
        objective_constant = self.objective.expr.constant * sign

        rows_ub: List[np.ndarray] = []
        rhs_ub: List[float] = []
        rows_eq: List[np.ndarray] = []
        rhs_eq: List[float] = []
        for constraint in self.constraints:
            row = np.zeros(n)
            for var, coef in constraint.expr.coeffs.items():
                row[var.index] += coef
            rhs = -constraint.expr.constant
            if constraint.sense is Sense.LE:
                rows_ub.append(row)
                rhs_ub.append(rhs)
            elif constraint.sense is Sense.GE:
                rows_ub.append(-row)
                rhs_ub.append(-rhs)
            else:
                rows_eq.append(row)
                rhs_eq.append(rhs)

        lower = np.array([v.lb for v in self.variables])
        upper = np.array([v.ub for v in self.variables])
        integer_indices = [v.index for v in self.integer_variables()]
        return {
            "c": c,
            "a_ub": np.array(rows_ub) if rows_ub else None,
            "b_ub": np.array(rhs_ub) if rhs_ub else None,
            "a_eq": np.array(rows_eq) if rows_eq else None,
            "b_eq": np.array(rhs_eq) if rhs_eq else None,
            "lower": lower,
            "upper": upper,
            "objective_constant": objective_constant,
            "integer_indices": integer_indices,
            "minimise": self.objective.minimise,
        }

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        backend: str = "auto",
        max_nodes: int = 20000,
        gap_tolerance: float = 1e-6,
        warm_start: Optional[Mapping[Var, float]] = None,
    ) -> Solution:
        """Solve the model.

        Parameters
        ----------
        backend:
            LP backend (``"auto"``, ``"scipy"`` or ``"simplex"``).
        max_nodes:
            Branch-and-bound node budget.
        gap_tolerance:
            Absolute optimality gap at which the search stops.
        warm_start:
            Optional feasible assignment used as the initial incumbent
            (e.g. from the specialised graph solver).
        """
        from repro.milp.branch_bound import solve_milp  # local import, avoids a cycle

        arrays = self.to_arrays()
        warm_vector = None
        if warm_start is not None:
            warm_vector = np.array(
                [float(warm_start.get(v, 0.0)) for v in self.variables]
            )
        raw = solve_milp(
            arrays,
            backend=backend,
            max_nodes=max_nodes,
            gap_tolerance=gap_tolerance,
            warm_start=warm_vector,
        )
        values: Dict[Var, float] = {}
        objective = None
        if raw.x is not None:
            values = {v: float(raw.x[v.index]) for v in self.variables}
            objective = raw.objective + arrays["objective_constant"]
            if not self.objective.minimise:
                objective = -objective
        return Solution(
            status=raw.status,
            objective=objective,
            values=values,
            iterations=raw.iterations,
            nodes=raw.nodes,
        )

    def check_feasible(self, assignment: Mapping[Var, float], tolerance: float = 1e-6) -> bool:
        """Check whether an assignment satisfies all constraints and bounds."""
        for var in self.variables:
            value = float(assignment[var])
            if value < var.lb - tolerance or value > var.ub + tolerance:
                return False
            if var.vtype is not VarType.CONTINUOUS and abs(value - round(value)) > tolerance:
                return False
        return all(c.violation(assignment) <= tolerance for c in self.constraints)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Model({self.name!r}, vars={self.n_variables}, "
            f"constrs={self.n_constraints}, integers={len(self.integer_variables())})"
        )
