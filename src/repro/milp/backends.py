"""LP backends.

Two interchangeable LP engines solve the relaxations inside branch & bound:

* ``"simplex"`` — the built-in dense two-phase simplex
  (:mod:`repro.milp.simplex`), no dependencies beyond numpy;
* ``"scipy"`` — :func:`scipy.optimize.linprog` with the HiGHS method, used
  by default when scipy is importable (faster and numerically hardened).

Both receive the same array form of the problem and return an
:class:`~repro.milp.simplex.LpResult`; the test suite cross-validates them
on randomly generated LPs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.milp.simplex import LpResult, solve_lp_arrays
from repro.milp.status import SolveStatus

try:  # pragma: no cover - import guard
    from scipy.optimize import linprog as _scipy_linprog

    HAVE_SCIPY = True
except Exception:  # pragma: no cover - scipy genuinely absent
    _scipy_linprog = None
    HAVE_SCIPY = False


def default_backend() -> str:
    """Name of the preferred LP backend on this installation."""
    return "scipy" if HAVE_SCIPY else "simplex"


def solve_lp(
    c: np.ndarray,
    a_ub: Optional[np.ndarray],
    b_ub: Optional[np.ndarray],
    a_eq: Optional[np.ndarray],
    b_eq: Optional[np.ndarray],
    lower: np.ndarray,
    upper: np.ndarray,
    backend: str = "auto",
    max_iterations: int = 20000,
) -> LpResult:
    """Solve a bounded LP with the requested backend.

    ``backend`` is ``"auto"`` (scipy when available), ``"scipy"`` or
    ``"simplex"``.
    """
    if backend == "auto":
        backend = default_backend()
    if backend == "scipy":
        if not HAVE_SCIPY:
            raise RuntimeError("scipy backend requested but scipy is not installed")
        return _solve_with_scipy(c, a_ub, b_ub, a_eq, b_eq, lower, upper)
    if backend == "simplex":
        return solve_lp_arrays(c, a_ub, b_ub, a_eq, b_eq, lower, upper, max_iterations)
    raise ValueError(f"unknown LP backend {backend!r}")


def _solve_with_scipy(c, a_ub, b_ub, a_eq, b_eq, lower, upper) -> LpResult:
    bounds = list(zip(np.asarray(lower, dtype=float), np.asarray(upper, dtype=float), strict=True))
    result = _scipy_linprog(
        c,
        A_ub=a_ub if a_ub is not None and np.size(a_ub) else None,
        b_ub=b_ub if b_ub is not None and np.size(b_ub) else None,
        A_eq=a_eq if a_eq is not None and np.size(a_eq) else None,
        b_eq=b_eq if b_eq is not None and np.size(b_eq) else None,
        bounds=bounds,
        method="highs",
    )
    iterations = int(getattr(result, "nit", 0) or 0)
    if result.status == 0:
        return LpResult(SolveStatus.OPTIMAL, x=np.asarray(result.x), objective=float(result.fun), iterations=iterations)
    if result.status == 2:
        return LpResult(SolveStatus.INFEASIBLE, iterations=iterations)
    if result.status == 3:
        return LpResult(SolveStatus.UNBOUNDED, iterations=iterations)
    return LpResult(SolveStatus.ERROR, iterations=iterations)
