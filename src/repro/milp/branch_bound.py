"""Branch & bound over LP relaxations.

Best-first search on the LP lower bound with most-fractional branching.
An optional warm-start incumbent (e.g. produced by the specialised graph
solver of :mod:`repro.core.sample_solver`) prunes large parts of the tree
immediately, which is what makes the exact big-M formulation of the paper
practical on the per-sample problems.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.milp.backends import solve_lp
from repro.milp.status import SolveStatus

_INT_TOL = 1e-6


@dataclass
class MilpResult:
    """Raw MILP result on the array form of the problem."""

    status: SolveStatus
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None
    iterations: int = 0
    nodes: int = 0


def solve_milp(
    arrays: dict,
    backend: str = "auto",
    max_nodes: int = 20000,
    gap_tolerance: float = 1e-6,
    warm_start: Optional[np.ndarray] = None,
) -> MilpResult:
    """Solve a MILP given in the array form produced by ``Model.to_arrays``."""
    c = arrays["c"]
    a_ub, b_ub = arrays["a_ub"], arrays["b_ub"]
    a_eq, b_eq = arrays["a_eq"], arrays["b_eq"]
    lower = arrays["lower"].astype(float).copy()
    upper = arrays["upper"].astype(float).copy()
    integer_indices = list(arrays["integer_indices"])

    total_iterations = 0
    nodes_explored = 0

    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = math.inf
    if warm_start is not None and _is_feasible(warm_start, arrays):
        incumbent_x = warm_start.astype(float).copy()
        incumbent_obj = float(c @ incumbent_x)

    # Pure LP shortcut.
    if not integer_indices:
        result = solve_lp(c, a_ub, b_ub, a_eq, b_eq, lower, upper, backend=backend)
        return MilpResult(result.status, result.x, result.objective, result.iterations, 0)

    counter = itertools.count()
    root = (-math.inf, next(counter), lower, upper)
    heap: List[Tuple[float, int, np.ndarray, np.ndarray]] = [root]

    while heap:
        if nodes_explored >= max_nodes:
            status = SolveStatus.NODE_LIMIT
            return MilpResult(
                status if incumbent_x is None else SolveStatus.NODE_LIMIT,
                incumbent_x,
                incumbent_obj if incumbent_x is not None else None,
                total_iterations,
                nodes_explored,
            )
        bound, _, node_lower, node_upper = heapq.heappop(heap)
        if bound >= incumbent_obj - gap_tolerance:
            continue
        nodes_explored += 1
        relax = solve_lp(c, a_ub, b_ub, a_eq, b_eq, node_lower, node_upper, backend=backend)
        total_iterations += relax.iterations
        if relax.status is SolveStatus.INFEASIBLE:
            continue
        if relax.status is SolveStatus.UNBOUNDED:
            return MilpResult(SolveStatus.UNBOUNDED, None, None, total_iterations, nodes_explored)
        if not relax.status.has_solution or relax.x is None:
            continue
        if relax.objective is not None and relax.objective >= incumbent_obj - gap_tolerance:
            continue

        x = relax.x
        fractional = _most_fractional(x, integer_indices)
        if fractional is None:
            # Integral solution: new incumbent.
            objective = float(c @ x)
            if objective < incumbent_obj - gap_tolerance:
                incumbent_obj = objective
                incumbent_x = x.copy()
            continue

        index, value = fractional
        # Branch down.
        down_upper = node_upper.copy()
        down_upper[index] = math.floor(value)
        if down_upper[index] >= node_lower[index] - _INT_TOL:
            heapq.heappush(heap, (relax.objective, next(counter), node_lower.copy(), down_upper))
        # Branch up.
        up_lower = node_lower.copy()
        up_lower[index] = math.ceil(value)
        if up_lower[index] <= node_upper[index] + _INT_TOL:
            heapq.heappush(heap, (relax.objective, next(counter), up_lower, node_upper.copy()))

    if incumbent_x is None:
        return MilpResult(SolveStatus.INFEASIBLE, None, None, total_iterations, nodes_explored)
    # Round integer variables exactly before returning.
    x = incumbent_x.copy()
    for idx in integer_indices:
        x[idx] = round(x[idx])
    return MilpResult(SolveStatus.OPTIMAL, x, float(c @ x), total_iterations, nodes_explored)


def _most_fractional(x: np.ndarray, integer_indices: List[int]) -> Optional[Tuple[int, float]]:
    """Index and value of the integer variable farthest from integrality."""
    best_index = None
    best_frac = _INT_TOL
    for idx in integer_indices:
        value = x[idx]
        frac = abs(value - round(value))
        if frac > best_frac:
            best_frac = frac
            best_index = idx
    if best_index is None:
        return None
    return best_index, float(x[best_index])


def _is_feasible(x: np.ndarray, arrays: dict, tolerance: float = 1e-6) -> bool:
    """Feasibility check of a candidate assignment against the array form."""
    lower, upper = arrays["lower"], arrays["upper"]
    if np.any(x < lower - tolerance) or np.any(x > upper + tolerance):
        return False
    for idx in arrays["integer_indices"]:
        if abs(x[idx] - round(x[idx])) > tolerance:
            return False
    a_ub, b_ub = arrays["a_ub"], arrays["b_ub"]
    if a_ub is not None and np.any(a_ub @ x > b_ub + tolerance):
        return False
    a_eq, b_eq = arrays["a_eq"], arrays["b_eq"]
    if a_eq is not None and np.any(np.abs(a_eq @ x - b_eq) > tolerance):
        return False
    return True
