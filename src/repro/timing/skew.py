"""Hold-aware static clock-skew assignment.

The paper's experimental setup adds clock skews to the benchmark circuits
"so that they have more critical paths".  Arbitrary random skews, however,
would create massive nominal *hold* violations (short register-to-register
paths cannot tolerate a large positive capture-minus-launch skew), which no
amount of clock-period relaxation can repair — the circuits would have zero
yield regardless of buffering.  Real designs therefore assign useful skew
under hold constraints (or fix holds with delay padding afterwards).

:func:`hold_aware_random_skews` reproduces that behaviour: it draws random
per-flip-flop skews of the requested magnitude and then projects them onto
the feasible region of the difference constraints

    k_j - k_i <= hold_margin_ij      for every sequential edge (i, j)

where ``hold_margin_ij`` is the nominal hold quantity minus a guard band of
``n_sigma`` standard deviations.  The projection is an iterative
Gauss-Seidel repair with a global shrink fallback, which always terminates
because the all-zero skew assignment is feasible whenever the un-skewed
design meets hold.
"""

from __future__ import annotations


import numpy as np

from repro.circuit.clockskew import ClockSkewMap
from repro.timing.constraints import SequentialConstraintGraph
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_non_negative


def hold_aware_random_skews(
    constraint_graph: SequentialConstraintGraph,
    magnitude: float,
    rng: RngLike = None,
    n_sigma: float = 3.0,
    extra_margin: float = 0.0,
    max_iterations: int = 200,
    shrink_factor: float = 0.8,
) -> ClockSkewMap:
    """Draw random static skews that respect nominal hold constraints.

    Parameters
    ----------
    constraint_graph:
        Sequential constraint graph of the design (skews stored in it are
        ignored; only the statistical hold quantities are used).
    magnitude:
        Half-width of the initial uniform skew distribution (time units).
    n_sigma:
        Statistical guard band: the allowed capture-minus-launch skew is
        reduced by ``n_sigma`` standard deviations of the edge's hold
        quantity, so that hold violations stay rare under variation.
    extra_margin:
        Additional deterministic guard band (time units).
    max_iterations:
        Iteration budget of the Gauss-Seidel repair before the global
        shrink fallback kicks in.
    shrink_factor:
        Factor applied to all skews when the repair does not converge.
    """
    check_non_negative(magnitude, "magnitude")
    check_non_negative(n_sigma, "n_sigma")
    generator = ensure_rng(rng)

    ff_names = constraint_graph.ff_names
    n_ffs = len(ff_names)
    skews = generator.uniform(-magnitude, magnitude, size=n_ffs)
    if magnitude == 0.0 or constraint_graph.n_edges == 0:
        return ClockSkewMap({ff: float(s) for ff, s in zip(ff_names, skews, strict=True)})

    launch_idx = constraint_graph.edge_launch_idx
    capture_idx = constraint_graph.edge_capture_idx
    limits = np.array(
        [
            e.hold_quantity.mean - n_sigma * e.hold_quantity.std - extra_margin
            for e in constraint_graph.edges
        ]
    )
    # Edges that violate hold even with zero skew cannot be repaired by skew
    # assignment; they keep a zero allowance so the repair does not chase them.
    limits = np.maximum(limits, 0.0)

    skews = _project_onto_constraints(
        skews, launch_idx, capture_idx, limits, max_iterations, shrink_factor
    )
    return ClockSkewMap({ff: float(s) for ff, s in zip(ff_names, skews, strict=True)})


def _project_onto_constraints(
    skews: np.ndarray,
    launch_idx: np.ndarray,
    capture_idx: np.ndarray,
    limits: np.ndarray,
    max_iterations: int,
    shrink_factor: float,
) -> np.ndarray:
    """Iteratively repair ``skews`` until ``k_j - k_i <= limit`` on all edges."""
    skews = skews.copy()
    for _ in range(20):  # outer shrink loop
        converged = False
        for _ in range(max_iterations):
            diff = skews[capture_idx] - skews[launch_idx]
            violation = diff - limits
            violated = violation > 1e-9
            if not np.any(violated):
                converged = True
                break
            # Move both end points toward each other by half the violation.
            # Accumulate adjustments per flip-flop (several edges may touch
            # the same flip-flop within one sweep).
            adjust = np.zeros_like(skews)
            counts = np.zeros_like(skews)
            v = violation[violated]
            np.add.at(adjust, capture_idx[violated], -0.5 * v)
            np.add.at(adjust, launch_idx[violated], 0.5 * v)
            np.add.at(counts, capture_idx[violated], 1.0)
            np.add.at(counts, launch_idx[violated], 1.0)
            counts = np.maximum(counts, 1.0)
            skews = skews + adjust / counts
        if converged:
            break
        skews *= shrink_factor
    else:  # pragma: no cover - defensive
        skews[:] = 0.0

    # Final exactness pass: clamp any residual violations edge by edge.
    for _ in range(3):
        diff = skews[capture_idx] - skews[launch_idx]
        violation = diff - limits
        order = np.argsort(-violation)
        changed = False
        for k in order:
            if violation[k] <= 1e-9:
                break
            skews[capture_idx[k]] -= violation[k]
            changed = True
            diff = skews[capture_idx] - skews[launch_idx]
            violation = diff - limits
        if not changed:
            break
    return skews


def apply_skews(
    constraint_graph: SequentialConstraintGraph, skew_map: ClockSkewMap
) -> None:
    """Update the skew fields of every edge of ``constraint_graph`` in place."""
    for edge in constraint_graph.edges:
        edge.skew_launch = skew_map.skew(edge.launch)
        edge.skew_capture = skew_map.skew(edge.capture)
    constraint_graph.design.clock_skew = skew_map
