"""Static and statistical timing analysis substrate.

* :mod:`repro.timing.graph` — builds the annotated timing graph of a
  design (combinational DAG with flip-flops split into launch / capture
  nodes, every node carrying nominal and canonical statistical delays).
* :mod:`repro.timing.propagate` — block-based arrival-time propagation:
  nominal max/min arrival times and per-flip-flop-pair canonical forms of
  the maximum and minimum combinational delay (the ``d`` and ``d-bar`` of
  the paper's constraints (1)–(2)).
* :mod:`repro.timing.constraints` — the sequential constraint graph: one
  :class:`SequentialEdge` per connected flip-flop pair with everything
  needed to write the setup and hold constraints, plus vectorised
  per-sample bound evaluation.
* :mod:`repro.timing.paths` — nominal critical-path extraction.
* :mod:`repro.timing.period` — minimum feasible clock period (nominal,
  statistical and per-sample).
"""

from repro.timing.constraints import (
    SequentialConstraintGraph,
    SequentialEdge,
    ensure_constraint_graph,
    extract_constraint_graph,
)
from repro.timing.skew import apply_skews, hold_aware_random_skews
from repro.timing.graph import DelayAnnotation, TimingGraph
from repro.timing.paths import CriticalPath, nominal_critical_paths
from repro.timing.period import (
    PeriodAnalysis,
    nominal_min_period,
    sample_min_periods,
    statistical_period,
)
from repro.timing.propagate import ff_pair_delay_forms, nominal_arrival_times

__all__ = [
    "TimingGraph",
    "DelayAnnotation",
    "SequentialEdge",
    "SequentialConstraintGraph",
    "extract_constraint_graph",
    "ensure_constraint_graph",
    "hold_aware_random_skews",
    "apply_skews",
    "ff_pair_delay_forms",
    "nominal_arrival_times",
    "CriticalPath",
    "nominal_critical_paths",
    "PeriodAnalysis",
    "nominal_min_period",
    "statistical_period",
    "sample_min_periods",
]
