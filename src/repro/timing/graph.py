"""Annotated timing graph.

:class:`TimingGraph` wraps the combinational DAG of a design (flip-flops
split into a launch node and a capture node, see
:meth:`repro.circuit.netlist.Netlist.combinational_digraph`) and annotates
every node with a :class:`DelayAnnotation`:

* nominal maximum (propagation) and minimum (contamination) delay,
* canonical statistical forms of both, built from the design's variation
  model and the instance's placement location.

Flip-flop launch nodes carry the clock-to-Q delay, capture nodes carry zero
delay (setup/hold enter through the constraint graph, not the timing
graph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

import networkx as nx

from repro.circuit.design import CircuitDesign
from repro.circuit.netlist import InstanceKind
from repro.variation.canonical import CanonicalForm


@dataclass
class DelayAnnotation:
    """Nominal and statistical delay of one timing-graph node."""

    nominal_max: float
    nominal_min: float
    form_max: CanonicalForm
    form_min: CanonicalForm


class TimingGraph:
    """Combinational timing graph of a :class:`~repro.circuit.design.CircuitDesign`.

    Nodes
    -----
    * primary-input names (zero delay launch points),
    * gate names (annotated with the gate's delay),
    * flip-flop names (launch nodes, annotated with clock-to-Q),
    * ``("sink", ff_name)`` tuples (capture nodes, zero delay),
    * primary-output names (zero delay sinks).
    """

    def __init__(self, design: CircuitDesign) -> None:
        self.design = design
        self.graph: "nx.DiGraph" = design.netlist.combinational_digraph()
        self._annotations: Dict[Hashable, DelayAnnotation] = {}
        self._annotate()
        self._topo_order: List[Hashable] = list(nx.topological_sort(self.graph))

    # ------------------------------------------------------------------
    def _annotate(self) -> None:
        netlist = self.design.netlist
        library = self.design.library
        variation = self.design.variation_model
        placement = self.design.placement

        for node in self.graph.nodes:
            if isinstance(node, tuple):
                # Flip-flop capture node: no delay of its own.
                self._annotations[node] = self._zero_annotation()
                continue
            inst = netlist.instance(node)
            if inst.kind in (InstanceKind.PRIMARY_INPUT, InstanceKind.PRIMARY_OUTPUT):
                self._annotations[node] = self._zero_annotation()
                continue
            cell = library.get(inst.cell)
            x, y = placement.location(node) if node in placement.locations else (None, None)
            if inst.is_flip_flop:
                nominal_max = cell.ff_timing.clk_to_q
                nominal_min = cell.ff_timing.clk_to_q * 0.8
            else:
                nominal_max = cell.delay
                nominal_min = cell.contamination_delay
            form_max = variation.delay_form(nominal_max, x, y).form
            form_min = variation.delay_form(nominal_min, x, y).form
            self._annotations[node] = DelayAnnotation(
                nominal_max=nominal_max,
                nominal_min=nominal_min,
                form_max=form_max,
                form_min=form_min,
            )

    def _zero_annotation(self) -> DelayAnnotation:
        zero = self.design.variation_model.constant_form(0.0)
        return DelayAnnotation(0.0, 0.0, zero, zero)

    # ------------------------------------------------------------------
    def annotation(self, node: Hashable) -> DelayAnnotation:
        """Delay annotation of a node."""
        return self._annotations[node]

    @property
    def topological_order(self) -> List[Hashable]:
        """Topological order of the timing graph."""
        return self._topo_order

    def launch_nodes(self) -> List[str]:
        """Timing start points: primary inputs and flip-flop launch nodes."""
        netlist = self.design.netlist
        return list(netlist.primary_inputs) + list(netlist.flip_flops)

    def capture_node(self, ff: str) -> Tuple[str, str]:
        """The capture (D-input) node of flip-flop ``ff``."""
        return ("sink", ff)

    def fanout_cone(self, source: Hashable) -> List[Hashable]:
        """All nodes reachable from ``source`` (excluding the source itself)."""
        return list(nx.descendants(self.graph, source))

    def setup_form(self, ff: str) -> CanonicalForm:
        """Canonical form of the setup time of flip-flop ``ff``."""
        cell = self.design.library.get(self.design.netlist.instance(ff).cell)
        x, y = self._ff_location(ff)
        return self.design.variation_model.delay_form(cell.ff_timing.setup, x, y).form

    def hold_form(self, ff: str) -> CanonicalForm:
        """Canonical form of the hold time of flip-flop ``ff``."""
        cell = self.design.library.get(self.design.netlist.instance(ff).cell)
        x, y = self._ff_location(ff)
        return self.design.variation_model.delay_form(cell.ff_timing.hold, x, y).form

    def _ff_location(self, ff: str):
        if ff in self.design.placement.locations:
            return self.design.placement.location(ff)
        return (None, None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimingGraph({self.design.name!r}, nodes={self.graph.number_of_nodes()}, "
            f"edges={self.graph.number_of_edges()})"
        )
