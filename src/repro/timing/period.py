"""Clock-period analysis.

The paper's experimental protocol (Sec. IV) first runs Monte-Carlo
simulation to obtain the mean ``mu_T`` and standard deviation ``sigma_T``
of the circuit's minimum clock period *without* tuning buffers; target
periods ``mu_T``, ``mu_T + sigma_T`` and ``mu_T + 2 sigma_T`` then
correspond to original yields of roughly 50 %, 84.13 % and 97.72 %.

This module provides the nominal, statistical (canonical SSTA) and
sample-based versions of that analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.circuit.design import CircuitDesign
from repro.timing.constraints import (
    ConstraintSamples,
    SequentialConstraintGraph,
    extract_constraint_graph,
)
from repro.utils.rng import RngLike
from repro.variation.sampling import MonteCarloSampler


@dataclass
class PeriodAnalysis:
    """Result of a Monte-Carlo clock-period analysis.

    Attributes
    ----------
    mean:
        Mean minimum period ``mu_T`` over the samples.
    std:
        Standard deviation ``sigma_T``.
    periods:
        Per-sample minimum period (setup-limited, no tuning).
    hold_feasible:
        Per-sample flag whether all hold constraints hold without tuning.
    """

    mean: float
    std: float
    periods: np.ndarray
    hold_feasible: np.ndarray

    def target_period(self, n_sigma: float = 0.0) -> float:
        """``mu_T + n_sigma * sigma_T`` — the paper's three targets use
        ``n_sigma`` of 0, 1 and 2."""
        return float(self.mean + n_sigma * self.std)

    def yield_at(self, period: float, require_hold: bool = True) -> float:
        """Fraction of samples meeting ``period`` without any tuning."""
        ok = self.periods <= period
        if require_hold:
            ok = ok & self.hold_feasible
        return float(np.mean(ok))

    def quantile_period(self, q: float) -> float:
        """Period at which the un-tuned yield equals ``q``."""
        return float(np.quantile(self.periods, q))


def nominal_min_period(
    design: CircuitDesign,
    constraint_graph: Optional[SequentialConstraintGraph] = None,
) -> float:
    """Smallest clock period meeting all nominal setup constraints."""
    graph = constraint_graph or extract_constraint_graph(design)
    return graph.nominal_min_period()


def statistical_period(
    design: CircuitDesign,
    constraint_graph: Optional[SequentialConstraintGraph] = None,
) -> Dict[str, float]:
    """SSTA estimate (canonical max) of the minimum-period distribution."""
    graph = constraint_graph or extract_constraint_graph(design)
    form = graph.statistical_period_form()
    return {"mean": form.mean, "std": form.std}


def sample_min_periods(
    design: CircuitDesign,
    n_samples: int = 1000,
    rng: RngLike = 0,
    constraint_graph: Optional[SequentialConstraintGraph] = None,
    constraint_samples: Optional[ConstraintSamples] = None,
    compiled=None,
) -> PeriodAnalysis:
    """Monte-Carlo distribution of the un-tuned minimum clock period.

    Either draws ``n_samples`` fresh samples or reuses pre-evaluated
    ``constraint_samples``.  When a
    :class:`~repro.core.compiled.CompiledConstraintSystem` is passed as
    ``compiled`` the batch is evaluated through its stacked coefficient
    matrices (one matmul per quantity) instead of the constraint graph.
    """
    if constraint_samples is None:
        source = compiled if compiled is not None else (
            constraint_graph or extract_constraint_graph(design)
        )
        sampler = MonteCarloSampler(design.variation_model, rng=rng)
        batch = sampler.sample(n_samples)
        constraint_samples = source.sample(batch, sampler=sampler)
    periods = constraint_samples.min_setup_period_per_sample()
    hold_ok = constraint_samples.hold_feasible_per_sample()
    return PeriodAnalysis(
        mean=float(np.mean(periods)),
        std=float(np.std(periods)),
        periods=periods,
        hold_feasible=hold_ok,
    )
