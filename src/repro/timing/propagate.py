"""Arrival-time propagation.

Three engines are provided:

* :func:`nominal_arrival_times` — classic deterministic STA over the whole
  graph (used for critical-path reporting and sanity checks);
* :func:`all_ff_pair_delay_forms` — **array-native** statistical
  propagation: one level-ordered sweep of the whole timing graph in which
  every node carries the stacked arrival forms of *all* launching
  flip-flops whose fan-out cone contains it
  (:class:`~repro.variation.arrayforms.ArrayForms`), so the per-node
  Clark max/min runs vectorised across launch flip-flops instead of once
  per flip-flop per cone;
* :func:`ff_pair_delay_forms` — the scalar per-launch reference path
  (object-at-a-time :class:`~repro.variation.canonical.CanonicalForm`
  propagation restricted to one fan-out cone), kept as the equivalence
  oracle for the array sweep.

Both statistical paths produce for every connected flip-flop pair the
canonical form of the maximum and minimum combinational delay (including
the launching flip-flop's clock-to-Q).  These forms are the statistical
``d_ij`` / ``d-bar_ij`` of the paper's constraints (1)–(2) and are later
evaluated per Monte-Carlo sample by :mod:`repro.timing.constraints`.
The array sweep applies the same Clark formulas elementwise and agrees
with the scalar path to well below ``1e-12``.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.backend import ArrayBackend, active_backend
from repro.timing.graph import TimingGraph
from repro.variation.arrayforms import clark_max_coeffs
from repro.variation.canonical import CanonicalForm


def nominal_arrival_times(timing_graph: TimingGraph) -> Dict[Hashable, Tuple[float, float]]:
    """Deterministic max/min arrival time at every node.

    All launch points (primary inputs and flip-flop outputs) start at time
    zero plus their own delay annotation (clock-to-Q for flip-flops).
    Nodes unreachable from any launch point get ``(0, 0)``.

    Returns
    -------
    dict
        ``node -> (max_arrival, min_arrival)``.
    """
    graph = timing_graph.graph
    launches = set(timing_graph.launch_nodes())
    arrival: Dict[Hashable, Tuple[float, float]] = {}

    for node in timing_graph.topological_order:
        ann = timing_graph.annotation(node)
        pred_max: Optional[float] = None
        pred_min: Optional[float] = None
        for pred in graph.predecessors(node):
            if pred not in arrival:
                continue
            pmax, pmin = arrival[pred]
            pred_max = pmax if pred_max is None else max(pred_max, pmax)
            pred_min = pmin if pred_min is None else min(pred_min, pmin)
        if pred_max is None:
            if node in launches:
                arrival[node] = (ann.nominal_max, ann.nominal_min)
            else:
                arrival[node] = (0.0, 0.0)
        else:
            arrival[node] = (pred_max + ann.nominal_max, pred_min + ann.nominal_min)
    return arrival


def ff_pair_delay_forms(
    timing_graph: TimingGraph,
    launch_ff: str,
) -> Dict[str, Tuple[CanonicalForm, CanonicalForm]]:
    """Canonical max/min combinational delay from ``launch_ff`` to every
    capture flip-flop it reaches (scalar reference path).

    The launching flip-flop's clock-to-Q delay is included in the returned
    forms, matching the paper's convention of folding it into ``d_ij``.

    Returns
    -------
    dict
        ``capture_ff -> (max_delay_form, min_delay_form)``.
    """
    graph = timing_graph.graph
    if launch_ff not in graph:
        raise KeyError(f"unknown launch flip-flop {launch_ff!r}")

    cone = set(nx.descendants(graph, launch_ff))
    cone.add(launch_ff)

    launch_ann = timing_graph.annotation(launch_ff)
    arrivals_max: Dict[Hashable, CanonicalForm] = {launch_ff: launch_ann.form_max}
    arrivals_min: Dict[Hashable, CanonicalForm] = {launch_ff: launch_ann.form_min}

    results: Dict[str, Tuple[CanonicalForm, CanonicalForm]] = {}
    for node in timing_graph.topological_order:
        if node == launch_ff or node not in cone:
            continue
        preds_in_cone = [p for p in graph.predecessors(node) if p in arrivals_max]
        if not preds_in_cone:
            continue
        max_in = arrivals_max[preds_in_cone[0]]
        min_in = arrivals_min[preds_in_cone[0]]
        for pred in preds_in_cone[1:]:
            max_in = max_in.max(arrivals_max[pred])
            min_in = min_in.min(arrivals_min[pred])

        if isinstance(node, tuple) and node[0] == "sink":
            # Capture flip-flop: record and do not propagate further.
            results[node[1]] = (max_in, min_in)
            continue

        ann = timing_graph.annotation(node)
        arrivals_max[node] = max_in + ann.form_max
        arrivals_min[node] = min_in + ann.form_min
    return results


# ----------------------------------------------------------------------
# Array-native whole-graph sweep
# ----------------------------------------------------------------------
def all_ff_pair_delay_forms(
    timing_graph: TimingGraph,
    launch_ffs: Optional[List[str]] = None,
    method: str = "array",
    backend: Optional[ArrayBackend] = None,
) -> Dict[Tuple[str, str], Tuple[CanonicalForm, CanonicalForm]]:
    """Canonical max/min delay forms for every connected flip-flop pair.

    Parameters
    ----------
    launch_ffs:
        Restrict the analysis to these launching flip-flops (defaults to
        all flip-flops of the design).
    method:
        ``"array"`` (default) runs the level-ordered whole-graph sweep
        with vectorised Clark max across launch flip-flops; ``"scalar"``
        runs the per-launch reference propagation.
    backend:
        Array backend the sweep's kernels run on (default: the
        process-wide active backend, numpy unless selected otherwise).

    Returns
    -------
    dict
        ``(launch_ff, capture_ff) -> (max_delay_form, min_delay_form)``.
    """
    design = timing_graph.design
    launch_ffs = launch_ffs if launch_ffs is not None else list(design.netlist.flip_flops)
    if method == "scalar":
        pairs: Dict[Tuple[str, str], Tuple[CanonicalForm, CanonicalForm]] = {}
        for launch in launch_ffs:
            for capture, forms in ff_pair_delay_forms(timing_graph, launch).items():
                pairs[(launch, capture)] = forms
        return pairs
    if method != "array":
        raise ValueError(f"unknown propagation method {method!r}")
    return _all_pairs_array(timing_graph, launch_ffs, backend=backend)


def _form_row(form: CanonicalForm, width: int, negate: bool = False) -> np.ndarray:
    """One canonical form as a flat coefficient row (optionally negated)."""
    row = np.empty(width)
    sign = -1.0 if negate else 1.0
    row[0] = sign * form.mean
    row[1:-1] = sign * form.sensitivities
    row[-1] = form.independent
    return row


#: Mean assigned to launch rows that have not reached a node yet.  The
#: value is an *absorbing element* of Clark's max in float64: against any
#: real arrival the tightness saturates exactly (``t = 1.0``,
#: ``phi = 0.0``), so ``max(real, absent) == real`` bit for bit and the
#: whole merge needs no masking.  Real arrival means are orders of
#: magnitude smaller, so no confusion is possible.
_ABSENT_MEAN = -1e30


def _extend_block(
    ids: Tuple[int, ...], block, union: Tuple[int, ...], width: int, xp: ArrayBackend
):
    """Expand a compact block onto a larger id union with sentinel rows."""
    if ids == union:
        return block
    position = {launch: row for row, launch in enumerate(union)}
    out = xp.zeros((2, len(union), width))
    out[:, :, 0] = _ABSENT_MEAN
    out[:, [position[i] for i in ids]] = block
    return out


def _all_pairs_array(
    timing_graph: TimingGraph,
    launch_ffs: List[str],
    backend: Optional[ArrayBackend] = None,
) -> Dict[Tuple[str, str], Tuple[CanonicalForm, CanonicalForm]]:
    """Level-ordered array sweep carrying all launch flip-flops at once.

    Every reached node holds one compact ``(2, k, width)`` coefficient
    block — plane 0 the max-arrival rows, plane 1 the **negated**
    min-arrival rows — for the ``k`` launch flip-flops whose cone
    contains the node.  Storing the minimum negated turns both
    statistical reductions into Clark-max only (``min(a, b) =
    -max(-a, -b)``, exactly the identity the scalar path uses), and
    launches absent on one side of a merge carry an absorbing sentinel
    row that Clark's saturated formulas pass through bit for bit.

    Nodes are processed **level by level** (longest pred distance from a
    launch), which makes every node of a level independent: the r-th
    predecessor fold of all of them is batched into a *single* Clark
    kernel invocation over the concatenated rows, so the per-call numpy
    overhead is paid per level-round instead of per node.  Blocks are
    freed once every successor has consumed them, bounding live memory
    by the level frontier.
    """
    xp = backend if backend is not None else active_backend()
    graph = timing_graph.graph
    for launch in launch_ffs:
        if launch not in graph:
            raise KeyError(f"unknown launch flip-flop {launch!r}")
    launch_index = {ff: i for i, ff in enumerate(launch_ffs)}
    width = timing_graph.design.variation_model.n_shared_sources + 2

    def _node_block(ann) -> np.ndarray:
        """One node's (2, 1, width) max/negated-min coefficient block."""
        block = np.empty((2, 1, width))
        block[0, 0] = _form_row(ann.form_max, width)
        block[1, 0] = _form_row(ann.form_min, width, negate=True)
        return block

    # node -> (sorted launch-id tuple, (2, k, width) coefficient block)
    arrivals: Dict[Hashable, Tuple[Tuple[int, ...], Any]] = {}
    for ff in launch_ffs:
        arrivals[ff] = (
            (launch_index[ff],),
            xp.asarray(_node_block(timing_graph.annotation(ff))),
        )

    # Level schedule over the reachable subgraph: a node's level is one
    # past its deepest reached predecessor, so all nodes of a level have
    # every input ready and none feeds another.
    levels: Dict[Hashable, int] = {ff: 0 for ff in launch_ffs}
    pred_lists: Dict[Hashable, List[Hashable]] = {}
    schedule: List[List[Hashable]] = []
    topo_position: Dict[str, int] = {}
    for node in timing_graph.topological_order:
        if node in levels:
            continue  # launch flip-flop: fixed start, nothing propagates in
        preds = [p for p in graph.predecessors(node) if p in levels]
        if not preds:
            continue
        depth = 1 + max(levels[p] for p in preds)
        levels[node] = depth
        pred_lists[node] = preds
        while len(schedule) < depth:
            schedule.append([])
        schedule[depth - 1].append(node)
        if isinstance(node, tuple) and node[0] == "sink":
            topo_position[node[1]] = len(topo_position)

    remaining: Dict[Hashable, int] = {}

    def consume(pred: Hashable) -> Tuple[Tuple[int, ...], Any]:
        """Fetch a predecessor's block, freeing it after its last use."""
        reached = arrivals[pred]
        left = remaining.get(pred)
        if left is None:
            left = sum(1 for s in graph.successors(pred) if s in pred_lists)
        if left <= 1:
            del arrivals[pred]
            remaining.pop(pred, None)
        else:
            remaining[pred] = left - 1
        return reached

    captured: Dict[str, Tuple[Tuple[int, ...], Any]] = {}
    for level_nodes in schedule:
        # Fold round 0: adopt the first predecessor (by reference).
        state: Dict[Hashable, Tuple[Tuple[int, ...], Any]] = {
            node: consume(pred_lists[node][0]) for node in level_nodes
        }
        # Fold rounds r >= 1: one batched kernel call per round merges
        # the r-th predecessor into every node of the level that has one.
        round_index = 1
        while True:
            active = [node for node in level_nodes if len(pred_lists[node]) > round_index]
            if not active:
                break
            segments: List[Tuple[Hashable, Tuple[int, ...], int]] = []
            rows_a: List[Any] = []
            rows_b: List[Any] = []
            offset = 0
            for node in active:
                ids_a, block_a = state[node]
                ids_b, block_b = consume(pred_lists[node][round_index])
                if ids_a == ids_b:
                    union = ids_a
                else:
                    union = tuple(sorted(set(ids_a) | set(ids_b)))
                rows_a.append(
                    _extend_block(ids_a, block_a, union, width, xp).reshape(-1, width)
                )
                rows_b.append(
                    _extend_block(ids_b, block_b, union, width, xp).reshape(-1, width)
                )
                segments.append((node, union, offset))
                offset += 2 * len(union)
            merged = clark_max_coeffs(
                xp.concatenate(rows_a), xp.concatenate(rows_b), backend=xp
            )
            for node, union, start in segments:
                k = len(union)
                state[node] = (union, merged[start : start + 2 * k].reshape(2, k, width))
            round_index += 1

        # Folds done: record captures, add node delays, publish arrivals.
        for node in level_nodes:
            ids, block = state[node]
            if isinstance(node, tuple) and node[0] == "sink":
                captured[node[1]] = (ids, block)
                continue
            delay = xp.asarray(_node_block(timing_graph.annotation(node)))
            out = xp.empty_like(block)
            out[..., :-1] = block[..., :-1] + delay[..., :-1]
            out[..., -1] = xp.hypot(block[..., -1], delay[..., -1])
            arrivals[node] = (ids, out)

    # Emit pairs launch-major, captures in topological discovery order
    # (matches the scalar path's ordering exactly).
    ordered_captures = sorted(captured, key=topo_position.__getitem__)
    pairs: Dict[Tuple[str, str], Tuple[CanonicalForm, CanonicalForm]] = {}
    rows_of: Dict[str, Dict[int, int]] = {
        capture: {launch: row for row, launch in enumerate(captured[capture][0])}
        for capture in ordered_captures
    }
    blocks_np: Dict[str, np.ndarray] = {
        capture: xp.to_numpy(captured[capture][1]) for capture in ordered_captures
    }
    for launch in launch_ffs:
        idx = launch_index[launch]
        for capture in ordered_captures:
            row = rows_of[capture].get(idx)
            if row is None:
                continue
            block = blocks_np[capture]
            max_row = block[0, row]
            min_row = block[1, row]
            pairs[(launch, capture)] = (
                CanonicalForm(float(max_row[0]), max_row[1:-1].copy(), float(max_row[-1])),
                CanonicalForm(float(-min_row[0]), -min_row[1:-1], float(min_row[-1])),
            )
    return pairs
