"""Arrival-time propagation.

Two engines are provided:

* :func:`nominal_arrival_times` — classic deterministic STA over the whole
  graph (used for critical-path reporting and sanity checks);
* :func:`ff_pair_delay_forms` / :func:`all_ff_pair_delay_forms` — per
  launch flip-flop propagation of *canonical statistical forms* restricted
  to the flip-flop's fan-out cone, producing for every reachable capture
  flip-flop the canonical form of the maximum and minimum combinational
  delay (including the launching flip-flop's clock-to-Q).  These forms are
  the statistical ``d_ij`` / ``d-bar_ij`` of the paper's constraints
  (1)–(2) and are later evaluated per Monte-Carlo sample by
  :mod:`repro.timing.constraints`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx

from repro.timing.graph import TimingGraph
from repro.variation.canonical import CanonicalForm


def nominal_arrival_times(timing_graph: TimingGraph) -> Dict[Hashable, Tuple[float, float]]:
    """Deterministic max/min arrival time at every node.

    All launch points (primary inputs and flip-flop outputs) start at time
    zero plus their own delay annotation (clock-to-Q for flip-flops).
    Nodes unreachable from any launch point get ``(0, 0)``.

    Returns
    -------
    dict
        ``node -> (max_arrival, min_arrival)``.
    """
    graph = timing_graph.graph
    launches = set(timing_graph.launch_nodes())
    arrival: Dict[Hashable, Tuple[float, float]] = {}

    for node in timing_graph.topological_order:
        ann = timing_graph.annotation(node)
        pred_max: Optional[float] = None
        pred_min: Optional[float] = None
        for pred in graph.predecessors(node):
            if pred not in arrival:
                continue
            pmax, pmin = arrival[pred]
            pred_max = pmax if pred_max is None else max(pred_max, pmax)
            pred_min = pmin if pred_min is None else min(pred_min, pmin)
        if pred_max is None:
            if node in launches:
                arrival[node] = (ann.nominal_max, ann.nominal_min)
            else:
                arrival[node] = (0.0, 0.0)
        else:
            arrival[node] = (pred_max + ann.nominal_max, pred_min + ann.nominal_min)
    return arrival


def ff_pair_delay_forms(
    timing_graph: TimingGraph,
    launch_ff: str,
) -> Dict[str, Tuple[CanonicalForm, CanonicalForm]]:
    """Canonical max/min combinational delay from ``launch_ff`` to every
    capture flip-flop it reaches.

    The launching flip-flop's clock-to-Q delay is included in the returned
    forms, matching the paper's convention of folding it into ``d_ij``.

    Returns
    -------
    dict
        ``capture_ff -> (max_delay_form, min_delay_form)``.
    """
    graph = timing_graph.graph
    if launch_ff not in graph:
        raise KeyError(f"unknown launch flip-flop {launch_ff!r}")

    cone = set(nx.descendants(graph, launch_ff))
    cone.add(launch_ff)

    launch_ann = timing_graph.annotation(launch_ff)
    arrivals_max: Dict[Hashable, CanonicalForm] = {launch_ff: launch_ann.form_max}
    arrivals_min: Dict[Hashable, CanonicalForm] = {launch_ff: launch_ann.form_min}

    results: Dict[str, Tuple[CanonicalForm, CanonicalForm]] = {}
    for node in timing_graph.topological_order:
        if node == launch_ff or node not in cone:
            continue
        preds_in_cone = [p for p in graph.predecessors(node) if p in arrivals_max]
        if not preds_in_cone:
            continue
        max_in = arrivals_max[preds_in_cone[0]]
        min_in = arrivals_min[preds_in_cone[0]]
        for pred in preds_in_cone[1:]:
            max_in = max_in.max(arrivals_max[pred])
            min_in = min_in.min(arrivals_min[pred])

        if isinstance(node, tuple) and node[0] == "sink":
            # Capture flip-flop: record and do not propagate further.
            results[node[1]] = (max_in, min_in)
            continue

        ann = timing_graph.annotation(node)
        arrivals_max[node] = max_in + ann.form_max
        arrivals_min[node] = min_in + ann.form_min
    return results


def all_ff_pair_delay_forms(
    timing_graph: TimingGraph,
    launch_ffs: Optional[List[str]] = None,
) -> Dict[Tuple[str, str], Tuple[CanonicalForm, CanonicalForm]]:
    """Canonical max/min delay forms for every connected flip-flop pair.

    Parameters
    ----------
    launch_ffs:
        Restrict the analysis to these launching flip-flops (defaults to
        all flip-flops of the design).

    Returns
    -------
    dict
        ``(launch_ff, capture_ff) -> (max_delay_form, min_delay_form)``.
    """
    design = timing_graph.design
    launch_ffs = launch_ffs if launch_ffs is not None else list(design.netlist.flip_flops)
    pairs: Dict[Tuple[str, str], Tuple[CanonicalForm, CanonicalForm]] = {}
    for launch in launch_ffs:
        for capture, forms in ff_pair_delay_forms(timing_graph, launch).items():
            pairs[(launch, capture)] = forms
    return pairs
