"""Sequential constraint graph.

For two flip-flops ``i`` (launch) and ``j`` (capture) connected by
combinational logic, the paper's timing constraints with clock tuning
buffers are (eq. (1)–(2))::

    x_i + d_ij_max <= x_j + T - s_j      (setup)
    x_i + d_ij_min >= x_j + h_j          (hold)

With static design clock skews ``k_i`` / ``k_j`` added to both sides and
rewritten as *difference constraints* on the tuning values::

    x_i - x_j <= T - s_j - d_ij_max + (k_j - k_i)      =: setup bound
    x_j - x_i <= d_ij_min - h_j + (k_i - k_j)          =: hold bound

All delay quantities (``d_ij_max``, ``d_ij_min``, ``s_j``, ``h_j``) are
statistical; a Monte-Carlo sample fixes them to numbers, which turns every
edge into two plain difference constraints.  :class:`ConstraintSamples`
holds the vectorised per-sample values for a whole sample batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuit.design import CircuitDesign
from repro.timing.graph import TimingGraph
from repro.timing.propagate import all_ff_pair_delay_forms
from repro.utils.rng import RngLike
from repro.variation.arrayforms import ArrayForms
from repro.variation.canonical import CanonicalForm
from repro.variation.sampling import MonteCarloSampler, SampleBatch


@dataclass
class SequentialEdge:
    """One connected flip-flop pair with all timing quantities attached.

    Attributes
    ----------
    launch, capture:
        Flip-flop names (``i`` and ``j`` in the paper's notation).
    max_delay, min_delay:
        Canonical forms of the maximum / minimum combinational delay from
        launch to capture, *including* the launch flip-flop's clock-to-Q.
    setup, hold:
        Canonical forms of the capture flip-flop's setup and hold time.
    skew_launch, skew_capture:
        Static design clock skews of the two flip-flops.
    """

    launch: str
    capture: str
    max_delay: CanonicalForm
    min_delay: CanonicalForm
    setup: CanonicalForm
    hold: CanonicalForm
    skew_launch: float = 0.0
    skew_capture: float = 0.0

    @property
    def skew_difference(self) -> float:
        """``k_j - k_i``: capture skew minus launch skew."""
        return self.skew_capture - self.skew_launch

    @property
    def setup_quantity(self) -> CanonicalForm:
        """Canonical form of ``d_ij_max + s_j`` (everything the setup bound
        subtracts from ``T``)."""
        return self.max_delay + self.setup

    @property
    def hold_quantity(self) -> CanonicalForm:
        """Canonical form of ``d_ij_min - h_j``."""
        return self.min_delay - self.hold

    def nominal_setup_bound(self, period: float) -> float:
        """Nominal value of the setup bound ``x_i - x_j <= b`` at period ``T``."""
        return period - self.setup_quantity.mean + self.skew_difference

    def nominal_hold_bound(self) -> float:
        """Nominal value of the hold bound ``x_j - x_i <= b``."""
        return self.hold_quantity.mean - self.skew_difference

    def nominal_required_period(self) -> float:
        """Smallest period for which the nominal setup constraint holds at
        ``x_i = x_j = 0``."""
        return self.setup_quantity.mean - self.skew_difference


@dataclass
class ConstraintSamples:
    """Per-sample values of every edge's setup and hold quantities.

    Attributes
    ----------
    setup_values:
        Array ``(n_edges, n_samples)`` of sampled ``d_ij_max + s_j``.
    hold_values:
        Array ``(n_edges, n_samples)`` of sampled ``d_ij_min - h_j``.
    skew_difference:
        Array ``(n_edges,)`` of static ``k_j - k_i`` per edge.
    """

    setup_values: np.ndarray
    hold_values: np.ndarray
    skew_difference: np.ndarray

    def __post_init__(self) -> None:
        self.setup_values = np.asarray(self.setup_values, dtype=float)
        self.hold_values = np.asarray(self.hold_values, dtype=float)
        self.skew_difference = np.asarray(self.skew_difference, dtype=float)
        if self.setup_values.shape != self.hold_values.shape:
            raise ValueError("setup and hold sample arrays must have the same shape")
        if self.skew_difference.shape[0] != self.setup_values.shape[0]:
            raise ValueError("skew_difference length must equal the number of edges")

    @property
    def n_edges(self) -> int:
        """Number of sequential edges."""
        return int(self.setup_values.shape[0])

    @property
    def n_samples(self) -> int:
        """Number of Monte-Carlo samples."""
        return int(self.setup_values.shape[1])

    # ------------------------------------------------------------------
    def setup_bounds(self, period: float) -> np.ndarray:
        """Right-hand sides of the setup difference constraints
        ``x_i - x_j <= b`` for every edge and sample, at clock period ``T``.

        A negative entry means the corresponding constraint is violated
        when no tuning is applied (``x = 0``).
        """
        return period + self.skew_difference[:, None] - self.setup_values

    def hold_bounds(self) -> np.ndarray:
        """Right-hand sides of the hold difference constraints
        ``x_j - x_i <= b`` for every edge and sample (period independent)."""
        return self.hold_values - self.skew_difference[:, None]

    def min_setup_period_per_sample(self) -> np.ndarray:
        """Per-sample minimum period satisfying all setup constraints at
        ``x = 0`` (the sample's un-tuned clock period)."""
        if self.n_edges == 0:
            return np.zeros(self.n_samples)
        return np.max(self.setup_values - self.skew_difference[:, None], axis=0)

    def hold_feasible_per_sample(self) -> np.ndarray:
        """Boolean per-sample flag: all hold constraints satisfied at ``x = 0``."""
        if self.n_edges == 0:
            return np.ones(self.n_samples, dtype=bool)
        return np.all(self.hold_bounds() >= 0.0, axis=0)


class SequentialConstraintGraph:
    """All sequential edges of a design plus vectorised sample evaluation."""

    def __init__(self, design: CircuitDesign, edges: Sequence[SequentialEdge]) -> None:
        self.design = design
        self.edges: List[SequentialEdge] = list(edges)
        self.ff_names: List[str] = list(design.netlist.flip_flops)
        self.ff_index: Dict[str, int] = {ff: i for i, ff in enumerate(self.ff_names)}
        self.edge_launch_idx = np.array(
            [self.ff_index[e.launch] for e in self.edges], dtype=int
        )
        self.edge_capture_idx = np.array(
            [self.ff_index[e.capture] for e in self.edges], dtype=int
        )
        self._stacked_setup: Optional[ArrayForms] = None
        self._stacked_hold: Optional[ArrayForms] = None

    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of sequential (flip-flop pair) edges."""
        return len(self.edges)

    @property
    def n_flip_flops(self) -> int:
        """Number of flip-flops in the design."""
        return len(self.ff_names)

    def edges_of_ff(self, ff: str) -> List[int]:
        """Indices of edges incident to flip-flop ``ff``."""
        idx = self.ff_index[ff]
        return [
            k
            for k, e in enumerate(self.edges)
            if self.edge_launch_idx[k] == idx or self.edge_capture_idx[k] == idx
        ]

    def adjacency(self) -> Dict[int, List[int]]:
        """Map from flip-flop index to the indices of its incident edges."""
        adj: Dict[int, List[int]] = {i: [] for i in range(self.n_flip_flops)}
        for k in range(self.n_edges):
            adj[int(self.edge_launch_idx[k])].append(k)
            adj[int(self.edge_capture_idx[k])].append(k)
        return adj

    # ------------------------------------------------------------------
    def nominal_min_period(self) -> float:
        """Smallest period meeting every nominal setup constraint at x = 0."""
        if not self.edges:
            return 0.0
        return max(e.nominal_required_period() for e in self.edges)

    def statistical_period_form(self) -> CanonicalForm:
        """Canonical form of the circuit's minimum period (statistical max
        over all edges of ``d_ij_max + s_j - (k_j - k_i)``)."""
        if not self.edges:
            raise ValueError("constraint graph has no edges")
        forms = [e.setup_quantity + (-e.skew_difference) for e in self.edges]
        result = forms[0]
        for form in forms[1:]:
            result = result.max(form)
        return result

    # ------------------------------------------------------------------
    # Stacked (compiled) edge quantities
    # ------------------------------------------------------------------
    @property
    def n_sources(self) -> int:
        """Number of shared variation sources of the design's model."""
        return self.design.variation_model.n_shared_sources

    @property
    def stacked_setup_forms(self) -> ArrayForms:
        """All edges' ``d_ij_max + s_j`` as one coefficient matrix (cached)."""
        if self._stacked_setup is None:
            max_delay = ArrayForms.from_forms(
                (e.max_delay for e in self.edges), n_sources=self.n_sources
            )
            setup = ArrayForms.from_forms(
                (e.setup for e in self.edges), n_sources=self.n_sources
            )
            self._stacked_setup = max_delay.add(setup)
        return self._stacked_setup

    @property
    def stacked_hold_forms(self) -> ArrayForms:
        """All edges' ``d_ij_min - h_j`` as one coefficient matrix (cached)."""
        if self._stacked_hold is None:
            min_delay = ArrayForms.from_forms(
                (e.min_delay for e in self.edges), n_sources=self.n_sources
            )
            hold = ArrayForms.from_forms(
                (e.hold for e in self.edges), n_sources=self.n_sources
            )
            self._stacked_hold = min_delay.subtract(hold)
        return self._stacked_hold

    @property
    def skew_difference_vector(self) -> np.ndarray:
        """Static ``k_j - k_i`` of every edge as one vector."""
        return np.array([e.skew_difference for e in self.edges])

    # ------------------------------------------------------------------
    def sample(
        self,
        batch: SampleBatch,
        sampler: Optional[MonteCarloSampler] = None,
        rng: RngLike = None,
    ) -> ConstraintSamples:
        """Evaluate every edge's setup/hold quantities for a sample batch.

        Uses the cached stacked coefficient matrices: all edges times all
        samples is one matrix multiplication per quantity (plus one
        independent-noise draw, consumed in the same order as the
        historical per-list evaluation for bit-stable results).
        """
        sampler = sampler or MonteCarloSampler(self.design.variation_model, rng=rng)
        setup_values = sampler.evaluate_array(self.stacked_setup_forms, batch, rng=rng)
        hold_values = sampler.evaluate_array(self.stacked_hold_forms, batch, rng=rng)
        return ConstraintSamples(setup_values, hold_values, self.skew_difference_vector)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SequentialConstraintGraph({self.design.name!r}, "
            f"ffs={self.n_flip_flops}, edges={self.n_edges})"
        )


def ensure_constraint_graph(
    design: CircuitDesign,
    timing_graph: Optional[TimingGraph] = None,
) -> SequentialConstraintGraph:
    """Return the design's cached constraint graph, extracting it on demand.

    The statistical propagation behind :func:`extract_constraint_graph` is
    the most expensive preprocessing step, so designs built by
    :mod:`repro.circuit.suite` carry a cached graph; this helper makes the
    cache transparent to callers.
    """
    cached = getattr(design, "cached_constraint_graph", None)
    if isinstance(cached, SequentialConstraintGraph):
        return cached
    graph = extract_constraint_graph(design, timing_graph)
    design.cached_constraint_graph = graph
    return graph


def extract_constraint_graph(
    design: CircuitDesign,
    timing_graph: Optional[TimingGraph] = None,
) -> SequentialConstraintGraph:
    """Build the sequential constraint graph of a design.

    Runs statistical propagation from every flip-flop and assembles one
    :class:`SequentialEdge` per connected flip-flop pair.
    """
    timing_graph = timing_graph or TimingGraph(design)
    pair_forms = all_ff_pair_delay_forms(timing_graph)

    setup_forms: Dict[str, CanonicalForm] = {}
    hold_forms: Dict[str, CanonicalForm] = {}
    edges: List[SequentialEdge] = []
    for (launch, capture), (max_form, min_form) in pair_forms.items():
        if capture not in setup_forms:
            setup_forms[capture] = timing_graph.setup_form(capture)
            hold_forms[capture] = timing_graph.hold_form(capture)
        edges.append(
            SequentialEdge(
                launch=launch,
                capture=capture,
                max_delay=max_form,
                min_delay=min_form,
                setup=setup_forms[capture],
                hold=hold_forms[capture],
                skew_launch=design.clock_skew.skew(launch),
                skew_capture=design.clock_skew.skew(capture),
            )
        )
    return SequentialConstraintGraph(design, edges)
