"""Nominal critical-path extraction.

Used for reporting, for the criticality-based baseline and for sanity
checks of the synthetic circuit generator (a healthy benchmark has a wide
spread of register-to-register path delays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.timing.graph import TimingGraph


@dataclass(frozen=True)
class CriticalPath:
    """One register-to-register path.

    Attributes
    ----------
    launch, capture:
        End-point flip-flops.
    delay:
        Nominal maximum delay along the path, including clock-to-Q.
    nodes:
        The gate/instance names along the path from launch to capture.
    """

    launch: str
    capture: str
    delay: float
    nodes: Tuple[str, ...]


def nominal_critical_paths(
    timing_graph: TimingGraph,
    top_k: int = 10,
    per_launch_limit: Optional[int] = None,
) -> List[CriticalPath]:
    """Return the ``top_k`` register-to-register paths by nominal max delay.

    A single worst path is traced per (launch, capture) pair, so the result
    lists distinct flip-flop pairs.

    Parameters
    ----------
    per_launch_limit:
        Optional cap on how many capture flip-flops are recorded per launch
        flip-flop (keeps the scan cheap on very dense designs).
    """
    design = timing_graph.design
    results: List[CriticalPath] = []

    for launch in design.netlist.flip_flops:
        arrivals, predecessor = _max_arrivals_from(timing_graph, launch)
        captures: List[Tuple[float, Hashable]] = []
        for node, value in arrivals.items():
            if isinstance(node, tuple) and node[0] == "sink":
                captures.append((value, node))
        captures.sort(reverse=True)
        if per_launch_limit is not None:
            captures = captures[:per_launch_limit]
        for value, node in captures:
            path = _trace_back(node, predecessor, launch)
            results.append(
                CriticalPath(
                    launch=launch,
                    capture=node[1],
                    delay=float(value),
                    nodes=tuple(path),
                )
            )
    results.sort(key=lambda p: p.delay, reverse=True)
    return results[:top_k]


def _max_arrivals_from(
    timing_graph: TimingGraph, launch: str
) -> Tuple[Dict[Hashable, float], Dict[Hashable, Hashable]]:
    """Nominal max arrival from one launch flip-flop plus back-pointers."""
    graph = timing_graph.graph
    import networkx as nx

    cone = set(nx.descendants(graph, launch))
    cone.add(launch)
    arrivals: Dict[Hashable, float] = {launch: timing_graph.annotation(launch).nominal_max}
    predecessor: Dict[Hashable, Hashable] = {}

    for node in timing_graph.topological_order:
        if node == launch or node not in cone:
            continue
        best: Optional[float] = None
        best_pred: Optional[Hashable] = None
        for pred in graph.predecessors(node):
            if pred in arrivals and (best is None or arrivals[pred] > best):
                best = arrivals[pred]
                best_pred = pred
        if best is None:
            continue
        predecessor[node] = best_pred
        if isinstance(node, tuple) and node[0] == "sink":
            arrivals[node] = best
        else:
            arrivals[node] = best + timing_graph.annotation(node).nominal_max
    # Only keep sink arrivals plus intermediate nodes needed for tracing.
    return arrivals, predecessor


def _trace_back(
    node: Hashable, predecessor: Dict[Hashable, Hashable], launch: str
) -> List[str]:
    """Trace the worst path from ``node`` back to ``launch``."""
    path: List[str] = []
    current: Optional[Hashable] = node
    while current is not None and current != launch:
        if isinstance(current, tuple):
            path.append(current[1])
        else:
            path.append(str(current))
        current = predecessor.get(current)
    path.append(launch)
    path.reverse()
    return path


def path_delay_spread(timing_graph: TimingGraph, top_k: int = 50) -> Dict[str, float]:
    """Summary statistics of the top-``k`` register-to-register path delays."""
    paths = nominal_critical_paths(timing_graph, top_k=top_k)
    if not paths:
        return {"count": 0, "max": 0.0, "min": 0.0, "spread": 0.0}
    delays = [p.delay for p in paths]
    return {
        "count": float(len(delays)),
        "max": float(max(delays)),
        "min": float(min(delays)),
        "spread": float(max(delays) - min(delays)),
    }
